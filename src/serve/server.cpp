#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/wire.hpp"

namespace citl::serve {

namespace {

/// One client connection. Sockets are only ever read/written by the event
/// loop thread; workers reach a connection exclusively through its outbox
/// (mutex-guarded) and the loop's eventfd, so the fd lifecycle stays
/// single-threaded. shared_ptr keeps a connection alive for workers that
/// are still producing a response after the peer hung up.
struct Connection {
  explicit Connection(int fd_) : fd(fd_) {}
  const int fd;
  FrameParser parser;

  std::mutex out_mutex;
  std::vector<std::uint8_t> outbox;   ///< encoded, not yet written
  std::size_t out_written = 0;        ///< prefix of outbox already sent
  bool close_after_flush = false;     ///< set after a framing error
  bool dead = false;                  ///< loop removed the fd already
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct SessionServer::Impl {
  explicit Impl(ServerConfig cfg)
      : config(cfg), runtime(cfg.runtime) {}

  ServerConfig config;
  SessionRuntime runtime;

  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t port = 0;

  std::thread loop_thread;
  std::vector<std::thread> workers;
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::function<void()>> queue;

  // Owned by the loop thread exclusively.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;

  // Connections with response bytes queued by a worker, to be flushed by
  // the loop on the next eventfd wake.
  std::mutex pending_mutex;
  std::vector<std::shared_ptr<Connection>> pending;

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> bad_frames{0};

  void event_loop();
  void accept_ready();
  void read_ready(const std::shared_ptr<Connection>& conn);
  void flush(const std::shared_ptr<Connection>& conn);
  void close_conn(const std::shared_ptr<Connection>& conn);
  void update_epoll_interest(const Connection& conn, bool want_write);
  void handle_frame(const std::shared_ptr<Connection>& conn, Frame frame);
  void enqueue_response(const std::shared_ptr<Connection>& conn,
                        const Frame& resp, bool from_loop);
  void wake_loop();
  [[nodiscard]] Frame execute(const Frame& req);
  void worker_main();
};

SessionServer::SessionServer(ServerConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

SessionServer::~SessionServer() { stop(); }

bool SessionServer::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t SessionServer::port() const noexcept { return impl_->port; }

SessionRuntime& SessionServer::runtime() noexcept { return impl_->runtime; }

void SessionServer::start() {
  Impl& s = *impl_;
  if (s.running.load(std::memory_order_acquire)) return;

  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) {
    throw ConfigError("session server: socket() failed: " +
                      std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(s.config.port);
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(s.listen_fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw ConfigError("session server: cannot listen on port " +
                      std::to_string(s.config.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  s.port = ntohs(addr.sin_port);
  set_nonblocking(s.listen_fd);

  s.epoll_fd = ::epoll_create1(0);
  s.wake_fd = ::eventfd(0, EFD_NONBLOCK);
  if (s.epoll_fd < 0 || s.wake_fd < 0) {
    if (s.epoll_fd >= 0) ::close(s.epoll_fd);
    if (s.wake_fd >= 0) ::close(s.wake_fd);
    ::close(s.listen_fd);
    s.listen_fd = s.epoll_fd = s.wake_fd = -1;
    throw ConfigError("session server: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = s.listen_fd;
  ::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.listen_fd, &ev);
  ev.data.fd = s.wake_fd;
  ::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.wake_fd, &ev);

  s.stopping.store(false, std::memory_order_release);
  s.running.store(true, std::memory_order_release);

  unsigned workers = s.config.workers;
  if (workers == 0) {
    workers = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }
  s.workers.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    s.workers.emplace_back([&s] { s.worker_main(); });
  }
  s.loop_thread = std::thread([&s] { s.event_loop(); });
}

void SessionServer::stop() {
  Impl& s = *impl_;
  if (!s.running.load(std::memory_order_acquire)) return;
  s.stopping.store(true, std::memory_order_release);
  s.queue_cv.notify_all();
  for (auto& w : s.workers) w.join();
  s.workers.clear();
  {
    std::lock_guard<std::mutex> lk(s.queue_mutex);
    s.queue.clear();
  }
  s.wake_loop();
  s.loop_thread.join();
  ::close(s.listen_fd);
  ::close(s.epoll_fd);
  ::close(s.wake_fd);
  s.listen_fd = s.epoll_fd = s.wake_fd = -1;
  s.port = 0;
  {
    std::lock_guard<std::mutex> lk(s.pending_mutex);
    s.pending.clear();
  }
  s.running.store(false, std::memory_order_release);
}

void SessionServer::Impl::wake_loop() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
}

void SessionServer::Impl::event_loop() {
  constexpr int kMaxEvents = 32;
  epoll_event events[kMaxEvents];
  while (!stopping.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd) {
        std::uint64_t drained;
        while (::read(wake_fd, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> to_flush;
        {
          std::lock_guard<std::mutex> lk(pending_mutex);
          to_flush.swap(pending);
        }
        for (const auto& conn : to_flush) {
          if (!conn->dead) flush(conn);
        }
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      auto conn = it->second;  // keep alive across close_conn
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) read_ready(conn);
      if (!conn->dead && (events[i].events & EPOLLOUT)) flush(conn);
    }
  }
  // Shutdown: drop every connection.
  for (auto& [fd, conn] : conns) {
    conn->dead = true;
    ::close(conn->fd);
  }
  conns.clear();
}

void SessionServer::Impl::accept_ready() {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) return;  // EAGAIN or error: either way, done for now
    set_nonblocking(client);
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(client);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = client;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, client, &ev);
    conns.emplace(client, std::move(conn));
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionServer::Impl::read_ready(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      try {
        conn->parser.feed(buf, static_cast<std::size_t>(n));
        while (auto frame = conn->parser.next()) {
          frames_received.fetch_add(1, std::memory_order_relaxed);
          handle_frame(conn, std::move(*frame));
          if (conn->dead) return;
        }
      } catch (const Error& e) {
        // Framing error: best-effort typed error response, then close (the
        // stream offset can no longer be trusted).
        bad_frames.fetch_add(1, std::memory_order_relaxed);
        Frame err;
        err.status = e.code();
        WireWriter w;
        w.str(e.what());
        err.payload = w.take();
        {
          std::lock_guard<std::mutex> lk(conn->out_mutex);
          conn->close_after_flush = true;
        }
        enqueue_response(conn, err, /*from_loop=*/true);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or hard error.
    close_conn(conn);
    return;
  }
}

void SessionServer::Impl::update_epoll_interest(const Connection& conn,
                                                bool want_write) {
  epoll_event ev{};
  ev.events = want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void SessionServer::Impl::flush(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool want_write = false;
  {
    std::lock_guard<std::mutex> lk(conn->out_mutex);
    while (conn->out_written < conn->outbox.size()) {
      const ssize_t n =
          ::write(conn->fd, conn->outbox.data() + conn->out_written,
                  conn->outbox.size() - conn->out_written);
      if (n > 0) {
        conn->out_written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      close_now = true;  // peer gone
      break;
    }
    if (conn->out_written == conn->outbox.size()) {
      conn->outbox.clear();
      conn->out_written = 0;
      if (conn->close_after_flush) close_now = true;
    }
  }
  if (close_now) {
    close_conn(conn);
    return;
  }
  update_epoll_interest(*conn, want_write);
}

void SessionServer::Impl::close_conn(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns.erase(conn->fd);
  connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void SessionServer::Impl::enqueue_response(
    const std::shared_ptr<Connection>& conn, const Frame& resp,
    bool from_loop) {
  const std::vector<std::uint8_t> bytes = encode_frame(resp);
  {
    std::lock_guard<std::mutex> lk(conn->out_mutex);
    conn->outbox.insert(conn->outbox.end(), bytes.begin(), bytes.end());
  }
  frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (from_loop) {
    if (!conn->dead) flush(conn);
  } else {
    {
      std::lock_guard<std::mutex> lk(pending_mutex);
      pending.push_back(conn);
    }
    wake_loop();
  }
}

Frame SessionServer::Impl::execute(const Frame& req) {
  Frame resp;
  resp.opcode = req.opcode;
  resp.request_id = req.request_id;
  resp.session_id = req.session_id;
  try {
    WireReader r(req.payload);
    WireWriter w;
    switch (req.opcode) {
      case Opcode::kHello: {
        r.expect_end();
        w.str("citl-wire-v1");
        break;
      }
      case Opcode::kCreateSession: {
        const api::SessionConfig session_config = decode_session_config(r);
        r.expect_end();
        const std::uint32_t id = runtime.create(session_config);
        resp.session_id = id;
        const SessionInfo info = runtime.info(id);
        w.u32(info.schedule_length);
        w.f64(info.budget_cycles);
        w.f64(info.occupancy_estimate);
        break;
      }
      case Opcode::kSetParam: {
        const std::string name = r.str();
        const double value = r.f64();
        r.expect_end();
        runtime.set_param(req.session_id, name, value);
        break;
      }
      case Opcode::kGetParam: {
        const std::string name = r.str();
        r.expect_end();
        w.f64(runtime.param(req.session_id, name));
        break;
      }
      case Opcode::kSetState: {
        const std::string name = r.str();
        const double value = r.f64();
        r.expect_end();
        runtime.set_state(req.session_id, name, value);
        break;
      }
      case Opcode::kGetState: {
        const std::string name = r.str();
        r.expect_end();
        w.f64(runtime.state(req.session_id, name));
        break;
      }
      case Opcode::kEnableControl: {
        const bool on = r.u8() != 0;
        r.expect_end();
        runtime.enable_control(req.session_id, on);
        break;
      }
      case Opcode::kStep: {
        const std::uint32_t turns = r.u32();
        r.expect_end();
        const std::vector<hil::TurnRecord> records =
            runtime.step(req.session_id, turns);
        w.u32(static_cast<std::uint32_t>(records.size()));
        for (const auto& rec : records) encode_turn_record(w, rec);
        break;
      }
      case Opcode::kSnapshot: {
        r.expect_end();
        w.u32(runtime.snapshot(req.session_id));
        break;
      }
      case Opcode::kRestore: {
        const std::uint32_t snap = r.u32();
        r.expect_end();
        runtime.restore(req.session_id, snap);
        break;
      }
      case Opcode::kDestroySession: {
        r.expect_end();
        runtime.destroy(req.session_id);
        break;
      }
      case Opcode::kStats: {
        r.expect_end();
        const RuntimeStats st = runtime.stats();
        w.u32(static_cast<std::uint32_t>(st.active_sessions));
        w.u64(st.sessions_created);
        w.u64(st.admission_rejections);
        w.u64(st.step_requests);
        w.u64(st.turns_stepped);
        w.f64(st.occupancy_admitted);
        break;
      }
      default:
        throw Error("unknown opcode " +
                        std::to_string(static_cast<int>(req.opcode)),
                    ErrorCode::kBadFrame);
    }
    resp.status = ErrorCode::kOk;
    resp.payload = w.take();
  } catch (const Error& e) {
    resp.status = e.code();
    WireWriter w;
    w.str(e.what());
    resp.payload = w.take();
  } catch (const std::exception& e) {
    resp.status = ErrorCode::kInternal;
    WireWriter w;
    w.str(e.what());
    resp.payload = w.take();
  }
  return resp;
}

void SessionServer::Impl::handle_frame(const std::shared_ptr<Connection>& conn,
                                       Frame frame) {
  if (frame.opcode == Opcode::kStep) {
    // The only request whose cost scales with its argument: run it on a
    // worker so a long step cannot stall other clients' round trips.
    auto task = [this, conn, frame = std::move(frame)]() {
      enqueue_response(conn, execute(frame), /*from_loop=*/false);
    };
    {
      std::lock_guard<std::mutex> lk(queue_mutex);
      queue.push_back(std::move(task));
    }
    queue_cv.notify_one();
    return;
  }
  enqueue_response(conn, execute(frame), /*from_loop=*/true);
}

void SessionServer::Impl::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(queue_mutex);
      queue_cv.wait(lk, [&] {
        return stopping.load(std::memory_order_acquire) || !queue.empty();
      });
      if (stopping.load(std::memory_order_acquire)) return;
      task = std::move(queue.front());
      queue.pop_front();
    }
    task();
  }
}

std::string SessionServer::prometheus_text() {
  Impl& s = *impl_;
  std::string out;
  char line[160];
  const auto emit = [&](const char* name, const char* type,
                        std::uint64_t value) {
    std::snprintf(line, sizeof(line), "# TYPE %s %s\n%s %llu\n", name, type,
                  name, static_cast<unsigned long long>(value));
    out += line;
  };
  emit("citl_serve_connections_accepted_total", "counter",
       s.connections_accepted.load(std::memory_order_relaxed));
  emit("citl_serve_connections_closed_total", "counter",
       s.connections_closed.load(std::memory_order_relaxed));
  emit("citl_serve_frames_received_total", "counter",
       s.frames_received.load(std::memory_order_relaxed));
  emit("citl_serve_frames_sent_total", "counter",
       s.frames_sent.load(std::memory_order_relaxed));
  emit("citl_serve_bad_frames_total", "counter",
       s.bad_frames.load(std::memory_order_relaxed));
  out += s.runtime.prometheus_text();
  return out;
}

}  // namespace citl::serve
