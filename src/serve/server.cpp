#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/wire.hpp"

namespace citl::serve {

namespace {

/// One client connection. Sockets are only ever read/written by the event
/// loop thread; workers reach a connection exclusively through its outbox
/// (mutex-guarded) and the loop's eventfd, so the fd lifecycle stays
/// single-threaded. shared_ptr keeps a connection alive for workers that
/// are still producing a response after the peer hung up.
struct Connection {
  explicit Connection(int fd_) : fd(fd_) {}
  const int fd;
  FrameParser parser;

  /// Loop thread only: when the parser started holding a partial frame
  /// (steady ns), 0 while no frame is pending. The housekeeping tick closes
  /// connections whose partial frame outlives the read deadline.
  std::int64_t partial_since_ns = 0;

  std::mutex out_mutex;
  std::vector<std::uint8_t> outbox;   ///< encoded, not yet written
  std::size_t out_written = 0;        ///< prefix of outbox already sent
  bool close_after_flush = false;     ///< set after a framing error
  bool dead = false;                  ///< loop removed the fd already

  /// Request dedupe (guarded by out_mutex): the most recent responses by
  /// request id, so a duplicated request re-sends its cached response
  /// instead of executing twice, and requests still in flight on a worker
  /// are not double-queued. request id 0 (framing errors) is never cached.
  std::deque<std::pair<std::uint32_t, std::vector<std::uint8_t>>> resp_cache;
  std::set<std::uint32_t> in_flight;
};

/// Bounded per-connection response cache depth (covers a retry burst; a
/// duplicate older than this re-executes, which exactly-once step sequence
/// numbers make safe).
constexpr std::size_t kRespCacheDepth = 8;

[[nodiscard]] std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct SessionServer::Impl {
  explicit Impl(ServerConfig cfg)
      : config(cfg), runtime(cfg.runtime) {}

  ServerConfig config;
  SessionRuntime runtime;

  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t port = 0;

  std::thread loop_thread;
  std::vector<std::thread> workers;
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::function<void()>> queue;

  // Owned by the loop thread exclusively.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;

  // Connections with response bytes queued by a worker, to be flushed by
  // the loop on the next eventfd wake.
  std::mutex pending_mutex;
  std::vector<std::shared_ptr<Connection>> pending;

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> bad_frames{0};
  std::atomic<std::uint64_t> duplicate_requests{0};
  std::atomic<std::uint64_t> read_deadline_closed{0};

  /// Journals are replayed once per server lifetime, on the first start().
  bool recovered = false;
  /// Loop thread only: last housekeeping pass (steady ns).
  std::int64_t last_housekeep_ns = 0;

  void event_loop();
  void housekeep(std::int64_t now_ns);
  void accept_ready();
  void read_ready(const std::shared_ptr<Connection>& conn);
  void flush(const std::shared_ptr<Connection>& conn);
  void close_conn(const std::shared_ptr<Connection>& conn);
  void update_epoll_interest(const Connection& conn, bool want_write);
  void handle_frame(const std::shared_ptr<Connection>& conn, Frame frame);
  void enqueue_response(const std::shared_ptr<Connection>& conn,
                        const Frame& resp, bool from_loop);
  void wake_loop();
  [[nodiscard]] Frame execute(const Frame& req);
  void worker_main();
};

SessionServer::SessionServer(ServerConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

SessionServer::~SessionServer() { stop(); }

bool SessionServer::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t SessionServer::port() const noexcept { return impl_->port; }

SessionRuntime& SessionServer::runtime() noexcept { return impl_->runtime; }

void SessionServer::start() {
  Impl& s = *impl_;
  if (s.running.load(std::memory_order_acquire)) return;

  // Crash recovery happens before the listener exists: a client can never
  // observe a half-recovered runtime.
  if (!s.recovered && !s.config.runtime.state_dir.empty()) {
    s.runtime.recover();
    s.recovered = true;
  }

  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) {
    throw ConfigError("session server: socket() failed: " +
                      std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(s.config.port);
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(s.listen_fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw ConfigError("session server: cannot listen on port " +
                      std::to_string(s.config.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  s.port = ntohs(addr.sin_port);
  set_nonblocking(s.listen_fd);

  s.epoll_fd = ::epoll_create1(0);
  s.wake_fd = ::eventfd(0, EFD_NONBLOCK);
  if (s.epoll_fd < 0 || s.wake_fd < 0) {
    if (s.epoll_fd >= 0) ::close(s.epoll_fd);
    if (s.wake_fd >= 0) ::close(s.wake_fd);
    ::close(s.listen_fd);
    s.listen_fd = s.epoll_fd = s.wake_fd = -1;
    throw ConfigError("session server: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = s.listen_fd;
  ::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.listen_fd, &ev);
  ev.data.fd = s.wake_fd;
  ::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.wake_fd, &ev);

  s.stopping.store(false, std::memory_order_release);
  s.running.store(true, std::memory_order_release);

  unsigned workers = s.config.workers;
  if (workers == 0) {
    workers = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }
  s.workers.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    s.workers.emplace_back([&s] { s.worker_main(); });
  }
  s.loop_thread = std::thread([&s] { s.event_loop(); });
}

void SessionServer::stop() {
  Impl& s = *impl_;
  if (!s.running.load(std::memory_order_acquire)) return;
  s.stopping.store(true, std::memory_order_release);
  s.queue_cv.notify_all();
  for (auto& w : s.workers) w.join();
  s.workers.clear();
  {
    std::lock_guard<std::mutex> lk(s.queue_mutex);
    s.queue.clear();
  }
  s.wake_loop();
  s.loop_thread.join();
  ::close(s.listen_fd);
  ::close(s.epoll_fd);
  ::close(s.wake_fd);
  s.listen_fd = s.epoll_fd = s.wake_fd = -1;
  s.port = 0;
  {
    std::lock_guard<std::mutex> lk(s.pending_mutex);
    s.pending.clear();
  }
  s.running.store(false, std::memory_order_release);
}

void SessionServer::Impl::wake_loop() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
}

void SessionServer::Impl::event_loop() {
  constexpr int kMaxEvents = 32;
  epoll_event events[kMaxEvents];
  // Deadlines and TTLs need a periodic tick; without them the loop blocks
  // indefinitely (the eventfd wakes it for responses and shutdown).
  const bool ticking = config.read_deadline_ms > 0 ||
                       runtime.config().idle_session_ttl_s > 0.0;
  int tick_ms = -1;
  if (ticking) {
    tick_ms = 50;
    if (config.read_deadline_ms > 0) {
      const int quarter = static_cast<int>(config.read_deadline_ms / 4);
      tick_ms = std::min(tick_ms, std::max(5, quarter));
    }
  }
  last_housekeep_ns = steady_ns();
  while (!stopping.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd, events, kMaxEvents, tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ticking) {
      const std::int64_t now = steady_ns();
      if (now - last_housekeep_ns >=
          static_cast<std::int64_t>(tick_ms) * 1'000'000) {
        housekeep(now);
        last_housekeep_ns = now;
      }
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd) {
        std::uint64_t drained;
        while (::read(wake_fd, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> to_flush;
        {
          std::lock_guard<std::mutex> lk(pending_mutex);
          to_flush.swap(pending);
        }
        for (const auto& conn : to_flush) {
          if (!conn->dead) flush(conn);
        }
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      auto conn = it->second;  // keep alive across close_conn
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) read_ready(conn);
      if (!conn->dead && (events[i].events & EPOLLOUT)) flush(conn);
    }
  }
  // Shutdown: drop every connection.
  for (auto& [fd, conn] : conns) {
    conn->dead = true;
    ::close(conn->fd);
  }
  conns.clear();
}

void SessionServer::Impl::housekeep(std::int64_t now_ns) {
  if (config.read_deadline_ms > 0) {
    const std::int64_t limit =
        static_cast<std::int64_t>(config.read_deadline_ms) * 1'000'000;
    std::vector<std::shared_ptr<Connection>> overdue;
    for (const auto& [fd, conn] : conns) {
      if (conn->partial_since_ns != 0 &&
          now_ns - conn->partial_since_ns > limit) {
        overdue.push_back(conn);
      }
    }
    for (const auto& conn : overdue) {
      read_deadline_closed.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn);
    }
  }
  if (runtime.config().idle_session_ttl_s > 0.0) runtime.reap_idle();
}

void SessionServer::Impl::accept_ready() {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) return;  // EAGAIN or error: either way, done for now
    set_nonblocking(client);
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(client);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = client;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, client, &ev);
    conns.emplace(client, std::move(conn));
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionServer::Impl::read_ready(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      try {
        conn->parser.feed(buf, static_cast<std::size_t>(n));
        while (auto frame = conn->parser.next()) {
          frames_received.fetch_add(1, std::memory_order_relaxed);
          handle_frame(conn, std::move(*frame));
          if (conn->dead) return;
        }
        // Restart the partial-frame clock on every read: a peer trickling
        // one frame byte-by-byte keeps the *same* deadline only while the
        // frame stays incomplete.
        conn->partial_since_ns =
            conn->parser.buffered() > 0
                ? (conn->partial_since_ns != 0 ? conn->partial_since_ns
                                               : steady_ns())
                : 0;
      } catch (const Error& e) {
        // Framing error: best-effort typed error response, then close (the
        // stream offset can no longer be trusted).
        bad_frames.fetch_add(1, std::memory_order_relaxed);
        Frame err;
        err.status = e.code();
        WireWriter w;
        w.str(e.what());
        err.payload = w.take();
        {
          std::lock_guard<std::mutex> lk(conn->out_mutex);
          conn->close_after_flush = true;
        }
        enqueue_response(conn, err, /*from_loop=*/true);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or hard error.
    close_conn(conn);
    return;
  }
}

void SessionServer::Impl::update_epoll_interest(const Connection& conn,
                                                bool want_write) {
  epoll_event ev{};
  ev.events = want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void SessionServer::Impl::flush(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool want_write = false;
  {
    std::lock_guard<std::mutex> lk(conn->out_mutex);
    while (conn->out_written < conn->outbox.size()) {
      // MSG_NOSIGNAL: a peer that vanished mid-write yields EPIPE on *this*
      // connection instead of a process-wide SIGPIPE.
      const ssize_t n =
          ::send(conn->fd, conn->outbox.data() + conn->out_written,
                 conn->outbox.size() - conn->out_written, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      close_now = true;  // EPIPE/ECONNRESET/EOF: this peer only
      break;
    }
    if (conn->out_written == conn->outbox.size()) {
      conn->outbox.clear();
      conn->out_written = 0;
      if (conn->close_after_flush) close_now = true;
    }
  }
  if (close_now) {
    close_conn(conn);
    return;
  }
  update_epoll_interest(*conn, want_write);
}

void SessionServer::Impl::close_conn(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns.erase(conn->fd);
  connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void SessionServer::Impl::enqueue_response(
    const std::shared_ptr<Connection>& conn, const Frame& resp,
    bool from_loop) {
  const std::vector<std::uint8_t> bytes = encode_frame(resp);
  {
    std::lock_guard<std::mutex> lk(conn->out_mutex);
    conn->outbox.insert(conn->outbox.end(), bytes.begin(), bytes.end());
    if (resp.request_id != 0) {
      conn->in_flight.erase(resp.request_id);
      conn->resp_cache.emplace_back(resp.request_id, bytes);
      if (conn->resp_cache.size() > kRespCacheDepth) {
        conn->resp_cache.pop_front();
      }
    }
  }
  frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (from_loop) {
    if (!conn->dead) flush(conn);
  } else {
    {
      std::lock_guard<std::mutex> lk(pending_mutex);
      pending.push_back(conn);
    }
    wake_loop();
  }
}

Frame SessionServer::Impl::execute(const Frame& req) {
  Frame resp;
  resp.opcode = req.opcode;
  resp.request_id = req.request_id;
  resp.session_id = req.session_id;
  try {
    WireReader r(req.payload);
    WireWriter w;
    switch (req.opcode) {
      case Opcode::kHello: {
        r.expect_end();
        w.str("citl-wire-v1");
        break;
      }
      case Opcode::kCreateSession: {
        const api::SessionConfig session_config = decode_session_config(r);
        // Optional u64 tail: idempotent-create nonce (retry-safe create).
        const std::uint64_t nonce = r.remaining() == 8 ? r.u64() : 0;
        r.expect_end();
        const std::uint32_t id = runtime.create(session_config, nonce);
        resp.session_id = id;
        const SessionInfo info = runtime.info(id);
        w.u32(info.schedule_length);
        w.f64(info.budget_cycles);
        w.f64(info.occupancy_estimate);
        break;
      }
      case Opcode::kSetParam: {
        const std::string name = r.str();
        const double value = r.f64();
        r.expect_end();
        runtime.set_param(req.session_id, name, value);
        break;
      }
      case Opcode::kGetParam: {
        const std::string name = r.str();
        r.expect_end();
        w.f64(runtime.param(req.session_id, name));
        break;
      }
      case Opcode::kSetState: {
        const std::string name = r.str();
        const double value = r.f64();
        r.expect_end();
        runtime.set_state(req.session_id, name, value);
        break;
      }
      case Opcode::kGetState: {
        const std::string name = r.str();
        r.expect_end();
        w.f64(runtime.state(req.session_id, name));
        break;
      }
      case Opcode::kEnableControl: {
        const bool on = r.u8() != 0;
        r.expect_end();
        runtime.enable_control(req.session_id, on);
        break;
      }
      case Opcode::kStep: {
        const std::uint32_t turns = r.u32();
        // Optional u64 tail: exactly-once step sequence number.
        const std::uint64_t step_seq = r.remaining() == 8 ? r.u64() : 0;
        r.expect_end();
        const std::vector<hil::TurnRecord> records =
            runtime.step(req.session_id, turns, step_seq);
        w.u32(static_cast<std::uint32_t>(records.size()));
        for (const auto& rec : records) encode_turn_record(w, rec);
        break;
      }
      case Opcode::kAttachSession: {
        r.expect_end();
        const SessionInfo info = runtime.info(req.session_id);
        w.f64(info.time_s);
        w.u64(static_cast<std::uint64_t>(info.turn));
        w.u64(info.last_step_seq);
        break;
      }
      case Opcode::kSnapshot: {
        r.expect_end();
        w.u32(runtime.snapshot(req.session_id));
        break;
      }
      case Opcode::kRestore: {
        const std::uint32_t snap = r.u32();
        r.expect_end();
        runtime.restore(req.session_id, snap);
        break;
      }
      case Opcode::kDestroySession: {
        r.expect_end();
        runtime.destroy(req.session_id);
        break;
      }
      case Opcode::kStats: {
        r.expect_end();
        const RuntimeStats st = runtime.stats();
        w.u32(static_cast<std::uint32_t>(st.active_sessions));
        w.u64(st.sessions_created);
        w.u64(st.admission_rejections);
        w.u64(st.step_requests);
        w.u64(st.turns_stepped);
        w.f64(st.occupancy_admitted);
        w.u64(st.sessions_recovered);
        w.u64(st.sessions_reaped);
        w.u64(st.step_replays);
        break;
      }
      default:
        throw Error("unknown opcode " +
                        std::to_string(static_cast<int>(req.opcode)),
                    ErrorCode::kBadFrame);
    }
    resp.status = ErrorCode::kOk;
    resp.payload = w.take();
  } catch (const Error& e) {
    resp.status = e.code();
    WireWriter w;
    w.str(e.what());
    resp.payload = w.take();
  } catch (const std::exception& e) {
    resp.status = ErrorCode::kInternal;
    WireWriter w;
    w.str(e.what());
    resp.payload = w.take();
  }
  return resp;
}

void SessionServer::Impl::handle_frame(const std::shared_ptr<Connection>& conn,
                                       Frame frame) {
  if (frame.request_id != 0) {
    // Duplicate suppression: a retried request whose original response is
    // cached gets that response re-sent verbatim; a duplicate of a request
    // still executing is dropped (its response is already on the way).
    bool resend = false;
    {
      std::lock_guard<std::mutex> lk(conn->out_mutex);
      for (const auto& [id, bytes] : conn->resp_cache) {
        if (id == frame.request_id) {
          conn->outbox.insert(conn->outbox.end(), bytes.begin(), bytes.end());
          resend = true;
          break;
        }
      }
      if (!resend && !conn->in_flight.insert(frame.request_id).second) {
        duplicate_requests.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    if (resend) {
      duplicate_requests.fetch_add(1, std::memory_order_relaxed);
      frames_sent.fetch_add(1, std::memory_order_relaxed);
      if (!conn->dead) flush(conn);
      return;
    }
  }
  if (frame.opcode == Opcode::kStep) {
    // The only request whose cost scales with its argument: run it on a
    // worker so a long step cannot stall other clients' round trips.
    auto task = [this, conn, frame = std::move(frame)]() {
      enqueue_response(conn, execute(frame), /*from_loop=*/false);
    };
    {
      std::lock_guard<std::mutex> lk(queue_mutex);
      queue.push_back(std::move(task));
    }
    queue_cv.notify_one();
    return;
  }
  enqueue_response(conn, execute(frame), /*from_loop=*/true);
}

void SessionServer::Impl::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(queue_mutex);
      queue_cv.wait(lk, [&] {
        return stopping.load(std::memory_order_acquire) || !queue.empty();
      });
      if (stopping.load(std::memory_order_acquire)) return;
      task = std::move(queue.front());
      queue.pop_front();
    }
    task();
  }
}

std::string SessionServer::prometheus_text() {
  Impl& s = *impl_;
  std::string out;
  char line[160];
  const auto emit = [&](const char* name, const char* type,
                        std::uint64_t value) {
    std::snprintf(line, sizeof(line), "# TYPE %s %s\n%s %llu\n", name, type,
                  name, static_cast<unsigned long long>(value));
    out += line;
  };
  emit("citl_serve_connections_accepted_total", "counter",
       s.connections_accepted.load(std::memory_order_relaxed));
  emit("citl_serve_connections_closed_total", "counter",
       s.connections_closed.load(std::memory_order_relaxed));
  emit("citl_serve_frames_received_total", "counter",
       s.frames_received.load(std::memory_order_relaxed));
  emit("citl_serve_frames_sent_total", "counter",
       s.frames_sent.load(std::memory_order_relaxed));
  emit("citl_serve_bad_frames_total", "counter",
       s.bad_frames.load(std::memory_order_relaxed));
  emit("citl_serve_duplicate_requests_total", "counter",
       s.duplicate_requests.load(std::memory_order_relaxed));
  emit("citl_serve_read_deadline_closed_total", "counter",
       s.read_deadline_closed.load(std::memory_order_relaxed));
  out += s.runtime.prometheus_text();
  return out;
}

}  // namespace citl::serve
