#include "serve/wire.hpp"

#include <cstring>

namespace citl::serve {

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::kHello: return "hello";
    case Opcode::kCreateSession: return "create_session";
    case Opcode::kSetParam: return "set_param";
    case Opcode::kGetParam: return "get_param";
    case Opcode::kSetState: return "set_state";
    case Opcode::kGetState: return "get_state";
    case Opcode::kEnableControl: return "enable_control";
    case Opcode::kStep: return "step";
    case Opcode::kSnapshot: return "snapshot";
    case Opcode::kRestore: return "restore";
    case Opcode::kDestroySession: return "destroy_session";
    case Opcode::kStats: return "stats";
    case Opcode::kAttachSession: return "attach_session";
  }
  return "unknown";
}

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

[[nodiscard]] std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[noreturn]] void throw_bad_frame(const std::string& what) {
  throw Error("citl-wire-v1: " + what, ErrorCode::kBadFrame);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  const std::size_t body = kHeaderBytes + frame.payload.size();
  if (body > kMaxFrameBytes) {
    throw_bad_frame("frame payload exceeds kMaxFrameBytes (" +
                    std::to_string(frame.payload.size()) + " bytes)");
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + body);
  append_u32(out, static_cast<std::uint32_t>(body));
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.opcode));
  const auto status = static_cast<std::uint16_t>(frame.status);
  out.push_back(static_cast<std::uint8_t>(status));
  out.push_back(static_cast<std::uint8_t>(status >> 8));
  append_u32(out, frame.request_id);
  append_u32(out, frame.session_id);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

void FrameParser::feed(const std::uint8_t* data, std::size_t len) {
  // Compact lazily: drop fully-consumed prefix before growing the buffer.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameParser::next() {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const std::uint8_t* p = buf_.data() + consumed_;
  const std::uint32_t body = read_u32(p);
  if (body < kHeaderBytes) {
    throw_bad_frame("length prefix " + std::to_string(body) +
                    " is shorter than the 12-byte header");
  }
  if (body > kMaxFrameBytes) {
    throw_bad_frame("length prefix " + std::to_string(body) +
                    " exceeds kMaxFrameBytes");
  }
  if (avail < 4 + static_cast<std::size_t>(body)) return std::nullopt;
  Frame f;
  f.version = p[4];
  if (f.version != kWireVersion) {
    throw_bad_frame("unsupported protocol version " +
                    std::to_string(static_cast<int>(f.version)));
  }
  f.opcode = static_cast<Opcode>(p[5]);
  f.status = static_cast<ErrorCode>(static_cast<std::uint16_t>(p[6]) |
                                    (static_cast<std::uint16_t>(p[7]) << 8));
  f.request_id = read_u32(p + 8);
  f.session_id = read_u32(p + 12);
  f.payload.assign(p + 4 + kHeaderBytes, p + 4 + body);
  consumed_ += 4 + static_cast<std::size_t>(body);
  return f;
}

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) { append_u32(buf_, v); }

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireReader::need(std::size_t n) const {
  if (len_ - pos_ < n) {
    throw_bad_frame("truncated payload: need " + std::to_string(n) +
                    " byte(s) at offset " + std::to_string(pos_) + " of " +
                    std::to_string(len_));
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  const std::uint32_t v = read_u32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::expect_end() const {
  if (pos_ != len_) {
    throw_bad_frame("payload has " + std::to_string(len_ - pos_) +
                    " trailing byte(s)");
  }
}

void encode_session_config(WireWriter& w, const api::SessionConfig& config) {
  w.f64(config.f_ref_hz);
  w.u32(static_cast<std::uint32_t>(config.harmonic));
  w.f64(config.f_sync_hz);
  w.f64(config.gap_voltage_v);
  w.f64(config.jump_amplitude_deg);
  w.f64(config.jump_start_s);
  w.f64(config.jump_interval_s);
  w.f64(config.gain);
  w.u8(config.control_enabled ? 1 : 0);
  w.u8(config.pipelined ? 1 : 0);
  w.u8(config.cycle_accurate ? 1 : 0);
  w.u8(config.synthesize_waveform ? 1 : 0);
  w.u8(config.quantise_period ? 1 : 0);
  w.f64(config.phase_noise_rad);
  w.u64(config.noise_seed);
  w.u8(config.supervised ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(config.exec_tier));
}

api::SessionConfig decode_session_config(WireReader& r) {
  api::SessionConfig config;
  config.f_ref_hz = r.f64();
  config.harmonic = static_cast<int>(r.u32());
  config.f_sync_hz = r.f64();
  config.gap_voltage_v = r.f64();
  config.jump_amplitude_deg = r.f64();
  config.jump_start_s = r.f64();
  config.jump_interval_s = r.f64();
  config.gain = r.f64();
  config.control_enabled = r.u8() != 0;
  config.pipelined = r.u8() != 0;
  config.cycle_accurate = r.u8() != 0;
  config.synthesize_waveform = r.u8() != 0;
  config.quantise_period = r.u8() != 0;
  config.phase_noise_rad = r.f64();
  config.noise_seed = r.u64();
  config.supervised = r.u8() != 0;
  const std::uint8_t tier = r.u8();
  if (tier > static_cast<std::uint8_t>(cgra::ExecTier::kAuto)) {
    throw_bad_frame("unknown exec tier " + std::to_string(tier));
  }
  config.exec_tier = static_cast<cgra::ExecTier>(tier);
  return config;
}

void encode_turn_record(WireWriter& w, const hil::TurnRecord& rec) {
  w.f64(rec.time_s);
  w.f64(rec.phase_rad);
  w.f64(rec.dt_s);
  w.f64(rec.dgamma);
  w.f64(rec.correction_hz);
  w.f64(rec.gap_phase_rad);
}

hil::TurnRecord decode_turn_record(WireReader& r) {
  hil::TurnRecord rec;
  rec.time_s = r.f64();
  rec.phase_rad = r.f64();
  rec.dt_s = r.f64();
  rec.dgamma = r.f64();
  rec.correction_hz = r.f64();
  rec.gap_phase_rad = r.f64();
  return rec;
}

}  // namespace citl::serve
