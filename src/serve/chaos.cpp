#include "serve/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/random.hpp"
#include "fault/fault.hpp"
#include "serve/wire.hpp"

namespace citl::serve {

namespace {

/// One relayed connection: the client-facing socket and its upstream twin.
/// Pumps shut both ends down to sever the pair; fds close when the last
/// shared_ptr drops.
struct Link {
  Link(int client_fd_, int server_fd_)
      : client_fd(client_fd_), server_fd(server_fd_) {}
  ~Link() {
    ::close(client_fd);
    ::close(server_fd);
  }
  void sever() noexcept {
    ::shutdown(client_fd, SHUT_RDWR);
    ::shutdown(server_fd, SHUT_RDWR);
  }
  const int client_fd;
  const int server_fd;
};

[[nodiscard]] bool write_all(int fd, const std::uint8_t* data,
                             std::size_t len) noexcept {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

[[nodiscard]] std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

struct ChaosProxy::Impl {
  explicit Impl(ChaosConfig cfg) : config(cfg) {}

  ChaosConfig config;

  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
  std::uint16_t port = 0;

  std::thread accept_thread;
  std::mutex mutex;  ///< guards pumps + links
  std::vector<std::thread> pumps;
  std::vector<std::weak_ptr<Link>> links;
  std::uint64_t next_conn_index = 0;

  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> frames_forwarded{0};
  std::atomic<std::uint64_t> frames_torn{0};
  std::atomic<std::uint64_t> frames_delayed{0};
  std::atomic<std::uint64_t> frames_duplicated{0};
  std::atomic<std::uint64_t> connections_dropped{0};

  void accept_loop();
  void pump(std::shared_ptr<Link> link, int from, int to, Rng rng,
            bool client_to_server);
  /// Applies one frame's fate; returns false when the link must die.
  [[nodiscard]] bool relay_frame(const std::shared_ptr<Link>& link, int to,
                                 const std::uint8_t* frame, std::size_t size,
                                 Rng& rng, bool client_to_server);
  void pause() const {
    std::this_thread::sleep_for(std::chrono::milliseconds(config.delay_ms));
  }
};

ChaosProxy::ChaosProxy(ChaosConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t ChaosProxy::port() const noexcept { return impl_->port; }

ChaosStats ChaosProxy::stats() const {
  const Impl& s = *impl_;
  ChaosStats out;
  out.connections = s.connections.load(std::memory_order_relaxed);
  out.frames_forwarded = s.frames_forwarded.load(std::memory_order_relaxed);
  out.frames_torn = s.frames_torn.load(std::memory_order_relaxed);
  out.frames_delayed = s.frames_delayed.load(std::memory_order_relaxed);
  out.frames_duplicated = s.frames_duplicated.load(std::memory_order_relaxed);
  out.connections_dropped =
      s.connections_dropped.load(std::memory_order_relaxed);
  return out;
}

void ChaosProxy::start() {
  Impl& s = *impl_;
  if (s.running.load(std::memory_order_acquire)) return;
  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) {
    throw ConfigError("chaos proxy: socket() failed: " +
                      std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(s.config.listen_port);
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(s.listen_fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw ConfigError("chaos proxy: cannot listen on port " +
                      std::to_string(s.config.listen_port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  s.port = ntohs(addr.sin_port);
  s.stopping.store(false, std::memory_order_release);
  s.running.store(true, std::memory_order_release);
  s.accept_thread = std::thread([&s] { s.accept_loop(); });
}

void ChaosProxy::stop() {
  Impl& s = *impl_;
  if (!s.running.load(std::memory_order_acquire)) return;
  s.stopping.store(true, std::memory_order_release);
  // Wake the blocking accept(), then sever every live link so the pump
  // threads' blocking reads return (the ScrapeServer teardown pattern).
  ::shutdown(s.listen_fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    for (const auto& weak : s.links) {
      if (auto link = weak.lock()) link->sever();
    }
  }
  s.accept_thread.join();
  std::vector<std::thread> pumps;
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    pumps.swap(s.pumps);
  }
  for (auto& t : pumps) t.join();
  ::close(s.listen_fd);
  s.listen_fd = -1;
  s.port = 0;
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    s.links.clear();
  }
  s.running.store(false, std::memory_order_release);
}

void ChaosProxy::Impl::accept_loop() {
  while (!stopping.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    const int upstream = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config.upstream_port);
    if (upstream < 0 ||
        ::connect(upstream, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      if (upstream >= 0) ::close(upstream);
      ::close(client);
      continue;
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(upstream, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto link = std::make_shared<Link>(client, upstream);
    connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mutex);
    if (stopping.load(std::memory_order_acquire)) {
      link->sever();
      continue;
    }
    const std::uint64_t conn_seed =
        fault::derive_stream(config.seed, next_conn_index++);
    links.push_back(link);
    pumps.emplace_back([this, link, conn_seed] {
      pump(link, link->client_fd, link->server_fd,
           Rng(fault::derive_stream(conn_seed, 0)),
           /*client_to_server=*/true);
    });
    pumps.emplace_back([this, link, conn_seed] {
      pump(link, link->server_fd, link->client_fd,
           Rng(fault::derive_stream(conn_seed, 1)),
           /*client_to_server=*/false);
    });
  }
}

bool ChaosProxy::Impl::relay_frame(const std::shared_ptr<Link>& link, int to,
                                   const std::uint8_t* frame,
                                   std::size_t size, Rng& rng,
                                   bool client_to_server) {
  // One uniform draw per frame, carved into cumulative probability bands —
  // the schedule depends only on (seed, connection, direction, frame index).
  const double u = rng.uniform();
  double band = config.drop_prob;
  if (u < band) {
    connections_dropped.fetch_add(1, std::memory_order_relaxed);
    link->sever();
    return false;
  }
  band += config.tear_prob;
  if (u < band && size > 1) {
    // Torn frame: the far side sees a partial read, stalls on an incomplete
    // frame for delay_ms, then gets the rest.
    const std::size_t split =
        1 + static_cast<std::size_t>(rng.next_u64() % (size - 1));
    frames_torn.fetch_add(1, std::memory_order_relaxed);
    if (!write_all(to, frame, split)) return false;
    pause();
    if (!write_all(to, frame + split, size - split)) return false;
    frames_forwarded.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  band += config.delay_prob;
  if (u < band) {
    frames_delayed.fetch_add(1, std::memory_order_relaxed);
    pause();
  } else {
    band += config.duplicate_prob;
    if (u < band && client_to_server) {
      // Duplicated request: what a client retry racing its own delayed
      // response looks like to the server.
      frames_duplicated.fetch_add(1, std::memory_order_relaxed);
      if (!write_all(to, frame, size)) return false;
      frames_forwarded.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!write_all(to, frame, size)) return false;
  frames_forwarded.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ChaosProxy::Impl::pump(std::shared_ptr<Link> link, int from, int to,
                            Rng rng, bool client_to_server) {
  std::vector<std::uint8_t> buf;
  std::size_t consumed = 0;
  bool passthrough = false;  // set when the stream stops looking like frames
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(from, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      link->sever();
      return;
    }
    if (passthrough) {
      if (!write_all(to, chunk, static_cast<std::size_t>(n))) {
        link->sever();
        return;
      }
      continue;
    }
    buf.insert(buf.end(), chunk, chunk + n);
    for (;;) {
      const std::size_t avail = buf.size() - consumed;
      if (avail < 4) break;
      const std::uint32_t body = read_u32le(buf.data() + consumed);
      if (body < kHeaderBytes || body > kMaxFrameBytes) {
        // Not citl-wire-v1 framing: relay the rest verbatim.
        passthrough = true;
        if (!write_all(to, buf.data() + consumed, avail)) {
          link->sever();
          return;
        }
        buf.clear();
        consumed = 0;
        break;
      }
      const std::size_t frame_size = 4 + static_cast<std::size_t>(body);
      if (avail < frame_size) break;
      if (!relay_frame(link, to, buf.data() + consumed, frame_size, rng,
                       client_to_server)) {
        return;
      }
      consumed += frame_size;
    }
    if (consumed == buf.size()) {
      buf.clear();
      consumed = 0;
    } else if (consumed > (1u << 16)) {
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(consumed));
      consumed = 0;
    }
  }
}

}  // namespace citl::serve
