// citl-journal-v1: the session server's per-session write-ahead journal.
//
// One file per session under the runtime's state_dir records everything a
// session's state is a function of: its SessionConfig (first record, always),
// every mutating request in arrival order (param/state writes, control
// toggles, steps with their exactly-once sequence numbers, snapshot/restore)
// and periodic full checkpoint images that bound replay time. Because every
// engine in this codebase is deterministic for a fixed config (the invariant
// every sweep and serve test pins), replaying the journal against a fresh
// engine reproduces the crashed session bit-exactly — that is the
// crash-resume guarantee the ServeJournal tests prove against the in-process
// engine.
//
// File layout (all integers little-endian, doubles as raw binary64 bits —
// the same bit-transparent encoding as citl-wire-v1):
//
//   header   15 bytes  magic "citl-journal-v1"
//            u8        journal format version (1)
//            u32       session id
//            u64       api::session_config_digest of the session's config
//   record   u32       payload length
//            u8        JournalRecordType
//            u64       record sequence number (0, 1, 2, ...)
//            ...       payload (wire-encoded, layout per type)
//            u64       chain hash: FNV-1a over (previous chain hash ‖ type ‖
//                      seq ‖ payload); the first record chains off a hash of
//                      the header
//
// Every append is fsync'd before the server acknowledges the request, so an
// acknowledged mutation survives kill -9. The chain hash makes torn tails
// and bit flips detectable: scan_journal() loads the longest valid prefix
// and reports the first offending byte offset with kJournalCorrupt — a
// truncated or corrupted journal recovers to the last durable state instead
// of failing entirely (recovery semantics in docs/SERVING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "hil/turnloop.hpp"
#include "serve/wire.hpp"

namespace citl::serve {

inline constexpr char kJournalMagic[] = "citl-journal-v1";  // 15 chars
inline constexpr std::uint8_t kJournalVersion = 1;
/// Header bytes: magic (15) + version (1) + session id (4) + digest (8).
inline constexpr std::size_t kJournalHeaderBytes = 28;
/// A record claiming a larger payload is corrupt, not an allocation request.
inline constexpr std::uint32_t kMaxJournalPayloadBytes = 1u << 20;

/// What one journal record means on replay. Values are format-stable like
/// the wire opcodes: never renumber, only append.
enum class JournalRecordType : std::uint8_t {
  kConfig = 1,         ///< wire SessionConfig + u64 create nonce; always first
  kSetParam = 2,       ///< str name + f64 value
  kSetState = 3,       ///< str name + f64 value
  kEnableControl = 4,  ///< u8 on/off
  kStep = 5,           ///< u32 turns + u64 step sequence number
  kSnapshot = 6,       ///< u32 snapshot id + checkpoint image
  kRestore = 7,        ///< u32 snapshot id
  /// Periodic compaction image written immediately *before* the step that
  /// crossed the checkpoint interval (payload: u64 last applied step seq +
  /// checkpoint image). Replay fast-forwards to the last one, so the final
  /// journalled step is always re-executed — which rebuilds the cached
  /// response an exactly-once retry of that step needs.
  kCheckpoint = 8,
};

[[nodiscard]] const char* journal_record_type_name(
    JournalRecordType type) noexcept;

/// One decoded record of the valid prefix.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kConfig;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Everything scan_journal() learned from one file: the header identity, the
/// longest valid record prefix, and — when the file is damaged — where the
/// damage starts. `corrupt` does not make the prefix unusable; recovery
/// replays the prefix and surfaces the corruption in the runtime counters.
struct JournalScan {
  std::uint32_t session_id = 0;
  std::uint64_t config_digest = 0;
  std::vector<JournalRecord> records;
  bool corrupt = false;
  std::uint64_t corrupt_offset = 0;  ///< first invalid byte offset
  std::string corrupt_reason;        ///< human-readable diagnosis
  /// Chain/append state after the valid prefix, so a writer can continue
  /// the same file: next record seq, running chain hash, and the byte length
  /// of the valid prefix (a corrupt tail is truncated away on reopen).
  std::uint64_t next_seq = 0;
  std::uint64_t chain = 0;
  std::uint64_t valid_bytes = 0;
};

/// Reads a journal file and returns its longest valid prefix. Throws
/// Error{kJournalCorrupt} only when the file is unusable from byte 0 — too
/// short for a header, wrong magic, or an unsupported format version (the
/// mixed-version case); anything after a valid header degrades to a
/// truncated prefix with `corrupt` set instead of an exception.
[[nodiscard]] JournalScan scan_journal(const std::string& path);

/// Appends fsync'd, chain-hashed records to one session's journal file.
/// Default-constructed writers are disabled (journaling off): append() is a
/// no-op, so call sites need no `if` forest.
class JournalWriter {
 public:
  JournalWriter() = default;
  /// Creates (truncating) `path` and writes the header.
  JournalWriter(const std::string& path, std::uint32_t session_id,
                std::uint64_t config_digest);
  /// Reopens an existing journal after scan_journal(): truncates the corrupt
  /// tail (if any) and continues the record chain where the prefix ended.
  JournalWriter(const std::string& path, const JournalScan& scan);
  ~JournalWriter();

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return fd_ >= 0; }

  /// Appends one record and fsyncs. Throws Error{kInternal} on I/O failure
  /// (a session that cannot journal must not acknowledge mutations).
  void append(JournalRecordType type, const std::vector<std::uint8_t>& payload);

  /// Closes and deletes the file (session destroyed or reaped).
  void discard();

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  void close_fd() noexcept;

  int fd_ = -1;
  std::string path_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t chain_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

// --- checkpoint image codec ----------------------------------------------

/// Serialises a TurnLoop checkpoint (loop bookkeeping, controller/decimator
/// filter state, noise RNG, deadline accounting, model lane states and
/// pipeline registers) as raw binary64 bit patterns — restoring from the
/// decoded image is bit-exact, the same contract as TurnLoop::restore.
void encode_checkpoint(WireWriter& w, const hil::TurnLoop::Checkpoint& cp);

/// Decodes into an existing image (take loop.checkpoint() of the freshly
/// constructed session for a correctly-shaped one — Checkpoint carries live
/// controller/decimator instances and has no default constructor). Throws
/// Error{kBadFrame} on truncation, Error{kJournalCorrupt} on shape mismatch
/// against the target image.
void decode_checkpoint_into(WireReader& r, hil::TurnLoop::Checkpoint& cp);

}  // namespace citl::serve
