// SessionClient: a blocking citl-wire-v1 client.
//
// One TCP connection, synchronous request/response. Error parity with the
// library is the point: a non-kOk response status re-throws as the same
// citl::Error subclass an in-process caller would have caught — config-class
// codes (invalid config, unknown key, out of range, unsupported, admission
// rejected) as ConfigError, everything else as Error — carrying the server's
// message verbatim. Code written against SessionRuntime works unchanged
// against a SessionClient.
//
// Robustness (docs/SERVING.md "Durability" section): socket timeouts
// surface as typed kTimeout errors; a RetryPolicy re-sends the *identical*
// request bytes (same request id) under capped exponential backoff with
// deterministic jitter, reconnecting + re-running the hello handshake
// transparently when the connection dropped. Retries are safe because every
// effectful operation is idempotent on the server: creates carry a client
// nonce, steps carry a per-session exactly-once sequence number (the server
// replays the cached response for a duplicate), destroys tolerate kNotFound
// after a retry, and everything else is a read or a value-idempotent write.
// attach() re-binds to a journalled session after a client restart and
// resynchronises the step sequence counter from the server.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"
#include "core/random.hpp"
#include "hil/turnloop.hpp"
#include "serve/wire.hpp"

namespace citl::serve {

/// How request() behaves when the transport fails (timeout, dropped or
/// refused connection, torn response stream). Protocol-level errors — a
/// typed non-kOk status from the server — are never retried: they are
/// deterministic answers, not transport faults.
struct RetryPolicy {
  /// Total attempts per request; 1 = fail fast (the pre-retry behaviour:
  /// the original transport error is rethrown unchanged).
  unsigned max_attempts = 1;
  /// First backoff; subsequent ones multiply by `multiplier`, capped at
  /// `max_backoff_ms`, then jittered to 50–100% of the capped value.
  std::uint32_t initial_backoff_ms = 10;
  std::uint32_t max_backoff_ms = 1000;
  double multiplier = 2.0;
  /// Overall wall-clock budget per request across attempts and backoffs;
  /// exceeding it throws kRetryExhausted. 0 = unbounded.
  std::uint32_t deadline_ms = 0;
  /// Seed of the deterministic backoff-jitter stream (citl::Rng), so a
  /// test's retry schedule is reproducible run-to-run.
  std::uint64_t jitter_seed = 0x6369746cull;  // "citl"
};

struct ClientConfig {
  /// Server port on 127.0.0.1.
  std::uint16_t port = 0;
  /// SO_RCVTIMEO / SO_SNDTIMEO in milliseconds; a blocked read or write
  /// past this throws Error{kTimeout}. 0 = block forever.
  std::uint32_t recv_timeout_ms = 0;
  std::uint32_t send_timeout_ms = 0;
  RetryPolicy retry;
  /// Re-dial and re-handshake transparently when the connection dropped
  /// (observable only with retry.max_attempts > 1).
  bool reconnect = true;
};

/// What create() returns beyond the session id.
struct CreateResult {
  std::uint32_t session_id = 0;
  unsigned schedule_length = 0;
  double budget_cycles = 0.0;
  double occupancy_estimate = 0.0;
};

/// What attach() returns: where the (journalled) session currently stands.
struct AttachResult {
  double time_s = 0.0;
  std::uint64_t turn = 0;
  std::uint64_t last_step_seq = 0;
};

/// Stats response (subset of RuntimeStats that crosses the wire).
struct StatsResult {
  std::uint32_t active_sessions = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t admission_rejections = 0;
  std::uint64_t step_requests = 0;
  std::uint64_t turns_stepped = 0;
  double occupancy_admitted = 0.0;
  std::uint64_t sessions_recovered = 0;
  std::uint64_t sessions_reaped = 0;
  std::uint64_t step_replays = 0;
};

/// Client-side transport counters (monotonic over the client's lifetime).
struct ClientStats {
  std::uint64_t retries = 0;     ///< re-sent requests (excludes attempt 1)
  std::uint64_t reconnects = 0;  ///< successful re-dials after a drop
  std::uint64_t timeouts = 0;    ///< socket deadline expiries observed
};

class SessionClient {
 public:
  /// Connects to 127.0.0.1:`port` and performs the hello handshake.
  /// Throws ConfigError when the connection or handshake fails.
  explicit SessionClient(std::uint16_t port);
  /// Full-config constructor (timeouts, retry policy, reconnect).
  explicit SessionClient(const ClientConfig& config);
  ~SessionClient();

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  [[nodiscard]] CreateResult create(const api::SessionConfig& config);
  /// Destroys a session. After a retry or reconnect, a kNotFound response
  /// is treated as success — the earlier attempt evidently landed.
  void destroy(std::uint32_t session_id);

  /// Re-binds to a live (typically journal-recovered) session and
  /// resynchronises this client's exactly-once step counter with the
  /// server's last applied sequence number.
  [[nodiscard]] AttachResult attach(std::uint32_t session_id);

  [[nodiscard]] std::vector<hil::TurnRecord> step(std::uint32_t session_id,
                                                  std::uint32_t turns);

  void set_param(std::uint32_t session_id, std::string_view name,
                 double value);
  [[nodiscard]] double param(std::uint32_t session_id, std::string_view name);
  void set_state(std::uint32_t session_id, std::string_view name,
                 double value);
  [[nodiscard]] double state(std::uint32_t session_id, std::string_view name);

  void enable_control(std::uint32_t session_id, bool on);

  [[nodiscard]] std::uint32_t snapshot(std::uint32_t session_id);
  void restore(std::uint32_t session_id, std::uint32_t snapshot_id);

  [[nodiscard]] StatsResult stats();

  [[nodiscard]] const ClientStats& client_stats() const noexcept {
    return stats_;
  }

 private:
  /// Sends one request and blocks for its response, retrying per the
  /// policy; throws the typed error on a non-kOk status.
  Frame request(Opcode op, std::uint32_t session_id,
                std::vector<std::uint8_t> payload);
  /// One attempt: write `bytes`, read frames until `request_id` answers
  /// (stale duplicates are skipped). Transport faults throw a retryable
  /// internal exception type.
  Frame transact(const std::vector<std::uint8_t>& bytes,
                 std::uint32_t request_id);
  /// Dials + hello. Throws ConfigError when the dial or handshake fails.
  void connect_now();
  void drop_connection() noexcept;

  ClientConfig config_;
  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
  FrameParser parser_;
  Rng jitter_;     ///< deterministic backoff jitter (retry.jitter_seed)
  Rng nonce_rng_;  ///< uniquely-seeded create-nonce stream
  /// Per-session exactly-once step sequence (last applied, client view).
  std::map<std::uint32_t, std::uint64_t> step_seq_;
  ClientStats stats_;
};

}  // namespace citl::serve
