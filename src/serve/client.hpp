// SessionClient: a blocking citl-wire-v1 client.
//
// One TCP connection, synchronous request/response. Error parity with the
// library is the point: a non-kOk response status re-throws as the same
// citl::Error subclass an in-process caller would have caught — config-class
// codes (invalid config, unknown key, out of range, unsupported, admission
// rejected) as ConfigError, everything else as Error — carrying the server's
// message verbatim. Code written against SessionRuntime works unchanged
// against a SessionClient.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"
#include "hil/turnloop.hpp"
#include "serve/wire.hpp"

namespace citl::serve {

/// What create() returns beyond the session id.
struct CreateResult {
  std::uint32_t session_id = 0;
  unsigned schedule_length = 0;
  double budget_cycles = 0.0;
  double occupancy_estimate = 0.0;
};

/// Stats response (subset of RuntimeStats that crosses the wire).
struct StatsResult {
  std::uint32_t active_sessions = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t admission_rejections = 0;
  std::uint64_t step_requests = 0;
  std::uint64_t turns_stepped = 0;
  double occupancy_admitted = 0.0;
};

class SessionClient {
 public:
  /// Connects to 127.0.0.1:`port` and performs the hello handshake.
  /// Throws ConfigError when the connection or handshake fails.
  explicit SessionClient(std::uint16_t port);
  ~SessionClient();

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  [[nodiscard]] CreateResult create(const api::SessionConfig& config);
  void destroy(std::uint32_t session_id);

  [[nodiscard]] std::vector<hil::TurnRecord> step(std::uint32_t session_id,
                                                  std::uint32_t turns);

  void set_param(std::uint32_t session_id, std::string_view name,
                 double value);
  [[nodiscard]] double param(std::uint32_t session_id, std::string_view name);
  void set_state(std::uint32_t session_id, std::string_view name,
                 double value);
  [[nodiscard]] double state(std::uint32_t session_id, std::string_view name);

  void enable_control(std::uint32_t session_id, bool on);

  [[nodiscard]] std::uint32_t snapshot(std::uint32_t session_id);
  void restore(std::uint32_t session_id, std::uint32_t snapshot_id);

  [[nodiscard]] StatsResult stats();

 private:
  /// Sends one request and blocks for its response; throws the typed error
  /// on a non-kOk status. Returns the response payload reader state.
  Frame request(Opcode op, std::uint32_t session_id,
                std::vector<std::uint8_t> payload);

  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
  FrameParser parser_;
};

}  // namespace citl::serve
