// ChaosProxy: a deterministic wire-level fault injector for citl-wire-v1.
//
// A loopback TCP proxy that sits between a SessionClient and a
// SessionServer and mistreats the byte stream the way a hostile network
// would: frames arrive torn in two (a forced partial read on the far side),
// delayed, duplicated (client→server only — the retry shape), or the
// connection is dropped outright mid-conversation. The ServeChaos tests
// drive client/server traffic through it and assert the robustness
// contract: every request either completes bit-identically to the
// fault-free run or fails with a typed error — never a hang, never silent
// corruption.
//
// Determinism is the point, exactly as in src/fault: every decision comes
// from a citl::Rng stream derived with fault::derive_stream from
// (config.seed, connection index, direction), so a failing schedule is a
// seed, not a flake. Decisions are made per *frame*, not per TCP segment:
// the proxy reassembles each direction's stream with the citl-wire-v1
// length prefix and rolls the dice once per complete frame, which keeps a
// schedule identical regardless of how the kernel chunked the bytes.
//
// Bytes that do not parse as frames (no valid length prefix within bounds)
// are forwarded verbatim — the proxy degrades to a plain relay rather than
// stalling on traffic it does not understand.
#pragma once

#include <cstdint>
#include <memory>

namespace citl::serve {

struct ChaosConfig {
  /// Server to forward to on 127.0.0.1 (required).
  std::uint16_t upstream_port = 0;
  /// Port to listen on (0 = kernel-assigned ephemeral port).
  std::uint16_t listen_port = 0;
  /// Master seed; per-connection per-direction streams derive from it.
  std::uint64_t seed = 1;
  // Per-frame fault probabilities (cumulative bands of one uniform draw, so
  // they must sum to ≤ 1; the remainder forwards the frame untouched).
  double drop_prob = 0.0;       ///< kill the whole connection
  double tear_prob = 0.0;       ///< split the frame, pause between halves
  double delay_prob = 0.0;      ///< pause, then forward intact
  double duplicate_prob = 0.0;  ///< send the frame twice (client→server only)
  /// Pause used by tears and delays.
  std::uint32_t delay_ms = 5;
};

/// Monotonic counters, snapshot via ChaosProxy::stats().
struct ChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t frames_forwarded = 0;  ///< includes the mistreated ones
  std::uint64_t frames_torn = 0;
  std::uint64_t frames_delayed = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t connections_dropped = 0;  ///< by drop_prob, not by peers
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosConfig config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listener and starts relaying. Throws ConfigError when the
  /// listener cannot bind.
  void start();
  /// Severs every relayed connection and joins all pump threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// Bound listener port (after start with listen_port 0); 0 when stopped.
  [[nodiscard]] std::uint16_t port() const noexcept;

  [[nodiscard]] ChaosStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace citl::serve
