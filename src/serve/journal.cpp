#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace citl::serve {

const char* journal_record_type_name(JournalRecordType type) noexcept {
  switch (type) {
    case JournalRecordType::kConfig: return "config";
    case JournalRecordType::kSetParam: return "set_param";
    case JournalRecordType::kSetState: return "set_state";
    case JournalRecordType::kEnableControl: return "enable_control";
    case JournalRecordType::kStep: return "step";
    case JournalRecordType::kSnapshot: return "snapshot";
    case JournalRecordType::kRestore: return "restore";
    case JournalRecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
/// Fixed bytes per record around the payload: u32 len + u8 type + u64 seq
/// before, u64 chain hash after.
constexpr std::size_t kRecordOverhead = 4 + 1 + 8 + 8;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Chain step shared by writer and scanner: mixes the previous chain value
/// with the record identity and payload.
std::uint64_t chain_record(std::uint64_t prev, JournalRecordType type,
                           std::uint64_t seq, const std::uint8_t* payload,
                           std::size_t len) noexcept {
  std::uint8_t fixed[17];
  for (int i = 0; i < 8; ++i) fixed[i] = static_cast<std::uint8_t>(prev >> (8 * i));
  fixed[8] = static_cast<std::uint8_t>(type);
  for (int i = 0; i < 8; ++i) {
    fixed[9 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  std::uint64_t h = fnv1a(kFnvOffset, fixed, sizeof(fixed));
  return fnv1a(h, payload, len);
}

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> encode_header(std::uint32_t session_id,
                                        std::uint64_t config_digest) {
  std::vector<std::uint8_t> h(kJournalHeaderBytes);
  std::memcpy(h.data(), kJournalMagic, 15);
  h[15] = kJournalVersion;
  put_u32(h.data() + 16, session_id);
  put_u64(h.data() + 20, config_digest);
  return h;
}

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw Error("journal " + path + ": " + what + " (" +
                  std::string(std::strerror(errno)) + ")",
              ErrorCode::kInternal);
}

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::string& path) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed", path);
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

// --- writer ---------------------------------------------------------------

JournalWriter::JournalWriter(const std::string& path, std::uint32_t session_id,
                             std::uint64_t config_digest)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd_ < 0) throw_io("open failed", path);
  const auto header = encode_header(session_id, config_digest);
  write_all(fd_, header.data(), header.size(), path_);
  if (::fsync(fd_) != 0) throw_io("fsync failed", path);
  chain_ = fnv1a(kFnvOffset, header.data(), header.size());
  bytes_ = header.size();
}

JournalWriter::JournalWriter(const std::string& path, const JournalScan& scan)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) throw_io("open failed", path);
  // Drop the corrupt tail (if any) so the continued chain stays valid.
  if (::ftruncate(fd_, static_cast<off_t>(scan.valid_bytes)) != 0) {
    throw_io("truncate failed", path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) throw_io("seek failed", path);
  next_seq_ = scan.next_seq;
  chain_ = scan.chain;
  bytes_ = scan.valid_bytes;
}

JournalWriter::~JournalWriter() { close_fd(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      next_seq_(other.next_seq_),
      chain_(other.chain_),
      records_(other.records_),
      bytes_(other.bytes_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    next_seq_ = other.next_seq_;
    chain_ = other.chain_;
    records_ = other.records_;
    bytes_ = other.bytes_;
  }
  return *this;
}

void JournalWriter::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void JournalWriter::append(JournalRecordType type,
                           const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) return;
  CITL_CHECK_MSG(payload.size() <= kMaxJournalPayloadBytes,
                 "journal record payload too large");
  const std::uint64_t seq = next_seq_;
  const std::uint64_t chain =
      chain_record(chain_, type, seq, payload.data(), payload.size());
  std::vector<std::uint8_t> rec(kRecordOverhead + payload.size());
  put_u32(rec.data(), static_cast<std::uint32_t>(payload.size()));
  rec[4] = static_cast<std::uint8_t>(type);
  put_u64(rec.data() + 5, seq);
  std::memcpy(rec.data() + 13, payload.data(), payload.size());
  put_u64(rec.data() + 13 + payload.size(), chain);
  write_all(fd_, rec.data(), rec.size(), path_);
  if (::fsync(fd_) != 0) throw_io("fsync failed", path_);
  next_seq_ = seq + 1;
  chain_ = chain;
  ++records_;
  bytes_ += rec.size();
}

void JournalWriter::discard() {
  close_fd();
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

// --- scanner --------------------------------------------------------------

JournalScan scan_journal(const std::string& path) {
  // Read the whole file: journals are bounded by checkpoint compaction and a
  // session's own request history, and scanning runs once per recovery.
  std::vector<std::uint8_t> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw Error("journal " + path + ": open failed (" +
                      std::string(std::strerror(errno)) + ")",
                  ErrorCode::kNotFound);
    }
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_io("read failed", path);
      }
      if (r == 0) break;
      bytes.insert(bytes.end(), buf, buf + r);
    }
    ::close(fd);
  }

  if (bytes.size() < kJournalHeaderBytes) {
    throw Error("journal " + path + ": file is " +
                    std::to_string(bytes.size()) +
                    " byte(s), shorter than the " +
                    std::to_string(kJournalHeaderBytes) + "-byte header",
                ErrorCode::kJournalCorrupt);
  }
  if (std::memcmp(bytes.data(), kJournalMagic, 15) != 0) {
    throw Error("journal " + path + ": bad magic at offset 0",
                ErrorCode::kJournalCorrupt);
  }
  if (bytes[15] != kJournalVersion) {
    throw Error("journal " + path + ": unsupported format version " +
                    std::to_string(static_cast<int>(bytes[15])) +
                    " at offset 15",
                ErrorCode::kJournalCorrupt);
  }

  JournalScan out;
  out.session_id = get_u32(bytes.data() + 16);
  out.config_digest = get_u64(bytes.data() + 20);
  out.chain = fnv1a(kFnvOffset, bytes.data(), kJournalHeaderBytes);
  out.valid_bytes = kJournalHeaderBytes;

  std::size_t pos = kJournalHeaderBytes;
  const auto corrupt_at = [&](std::size_t offset, const std::string& why) {
    out.corrupt = true;
    out.corrupt_offset = offset;
    out.corrupt_reason = why + " at offset " + std::to_string(offset) + " (" +
                         error_code_name(ErrorCode::kJournalCorrupt) + ")";
  };

  while (pos < bytes.size()) {
    const std::size_t record_start = pos;
    if (bytes.size() - pos < kRecordOverhead) {
      corrupt_at(record_start, "truncated record frame");
      break;
    }
    const std::uint32_t len = get_u32(bytes.data() + pos);
    if (len > kMaxJournalPayloadBytes) {
      corrupt_at(record_start, "record payload length " + std::to_string(len) +
                                   " exceeds the 1 MiB bound");
      break;
    }
    if (bytes.size() - pos < kRecordOverhead + len) {
      corrupt_at(record_start, "truncated record payload");
      break;
    }
    const auto type = static_cast<JournalRecordType>(bytes[pos + 4]);
    if (static_cast<std::uint8_t>(type) <
            static_cast<std::uint8_t>(JournalRecordType::kConfig) ||
        static_cast<std::uint8_t>(type) >
            static_cast<std::uint8_t>(JournalRecordType::kCheckpoint)) {
      corrupt_at(record_start,
                 "unknown record type " +
                     std::to_string(static_cast<int>(bytes[pos + 4])));
      break;
    }
    const std::uint64_t seq = get_u64(bytes.data() + pos + 5);
    if (seq != out.next_seq) {
      corrupt_at(record_start, "record sequence " + std::to_string(seq) +
                                   " (expected " +
                                   std::to_string(out.next_seq) + ")");
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 13;
    const std::uint64_t want = chain_record(out.chain, type, seq, payload, len);
    const std::uint64_t got = get_u64(payload + len);
    if (want != got) {
      corrupt_at(record_start, "chain hash mismatch");
      break;
    }
    JournalRecord rec;
    rec.type = type;
    rec.seq = seq;
    rec.payload.assign(payload, payload + len);
    out.records.push_back(std::move(rec));
    out.chain = want;
    out.next_seq = seq + 1;
    pos += kRecordOverhead + len;
    out.valid_bytes = pos;
  }
  return out;
}

// --- checkpoint image codec ----------------------------------------------

void encode_checkpoint(WireWriter& w, const hil::TurnLoop::Checkpoint& cp) {
  w.f64(cp.time_s);
  w.u64(static_cast<std::uint64_t>(cp.turn));
  w.u8(cp.control_on ? 1 : 0);
  w.f64(cp.ctrl_phase_rad);
  w.f64(cp.correction_hz);
  w.f64(cp.last_phase);
  w.f64(cp.budget_cycles);
  w.u64(static_cast<std::uint64_t>(cp.realtime_violations));

  const auto ctrl = cp.controller.state();
  w.u32(static_cast<std::uint32_t>(ctrl.fir_delay.size()));
  for (double v : ctrl.fir_delay) w.f64(v);
  w.u64(static_cast<std::uint64_t>(ctrl.fir_head));
  w.f64(ctrl.dc_prev_in);
  w.f64(ctrl.dc_prev_out);
  w.u8(ctrl.primed ? 1 : 0);
  w.f64(ctrl.last_correction_hz);

  const auto dec = cp.decimator.state();
  w.u64(static_cast<std::uint64_t>(dec.count));
  w.f64(dec.acc);
  w.f64(dec.output);

  const auto rng = cp.noise.state();
  for (std::uint64_t s : rng.s) w.u64(s);

  const auto dl = cp.deadline.state();
  w.u64(static_cast<std::uint64_t>(dl.revolutions));
  w.u64(static_cast<std::uint64_t>(dl.misses));
  w.f64(dl.headroom_min);
  w.f64(dl.headroom_max);
  w.f64(dl.headroom_sum);
  w.f64(dl.worst_overrun);
  for (std::uint64_t b : dl.buckets) w.u64(b);
  w.u32(static_cast<std::uint32_t>(dl.worst.size()));
  for (const auto& miss : dl.worst) {
    w.u64(static_cast<std::uint64_t>(miss.revolution));
    w.f64(miss.time_s);
    w.f64(miss.exec_cycles);
    w.f64(miss.budget_cycles);
  }

  w.u32(static_cast<std::uint32_t>(cp.states.size()));
  for (double v : cp.states) w.f64(v);
  w.u32(static_cast<std::uint32_t>(cp.pipe_regs.size()));
  for (double v : cp.pipe_regs) w.f64(v);
}

void decode_checkpoint_into(WireReader& r, hil::TurnLoop::Checkpoint& cp) {
  cp.time_s = r.f64();
  cp.turn = static_cast<std::int64_t>(r.u64());
  cp.control_on = r.u8() != 0;
  cp.ctrl_phase_rad = r.f64();
  cp.correction_hz = r.f64();
  cp.last_phase = r.f64();
  cp.budget_cycles = r.f64();
  cp.realtime_violations = static_cast<std::int64_t>(r.u64());

  ctrl::BeamPhaseController::State ctrl_st;
  const std::uint32_t fir_n = r.u32();
  if (fir_n != cp.controller.state().fir_delay.size()) {
    throw Error("checkpoint image FIR length " + std::to_string(fir_n) +
                    " does not match the session's controller",
                ErrorCode::kJournalCorrupt);
  }
  ctrl_st.fir_delay.resize(fir_n);
  for (auto& v : ctrl_st.fir_delay) v = r.f64();
  ctrl_st.fir_head = static_cast<std::size_t>(r.u64());
  ctrl_st.dc_prev_in = r.f64();
  ctrl_st.dc_prev_out = r.f64();
  ctrl_st.primed = r.u8() != 0;
  ctrl_st.last_correction_hz = r.f64();
  cp.controller.set_state(ctrl_st);

  ctrl::PhaseDecimator::State dec_st;
  dec_st.count = static_cast<std::size_t>(r.u64());
  dec_st.acc = r.f64();
  dec_st.output = r.f64();
  cp.decimator.set_state(dec_st);

  Rng::State rng_st;
  for (auto& s : rng_st.s) s = r.u64();
  cp.noise.set_state(rng_st);

  obs::DeadlineProfiler::State dl;
  dl.revolutions = static_cast<std::int64_t>(r.u64());
  dl.misses = static_cast<std::int64_t>(r.u64());
  dl.headroom_min = r.f64();
  dl.headroom_max = r.f64();
  dl.headroom_sum = r.f64();
  dl.worst_overrun = r.f64();
  for (auto& b : dl.buckets) b = r.u64();
  const std::uint32_t worst_n = r.u32();
  if (worst_n > obs::DeadlineProfiler::kWorstRecords) {
    throw Error("checkpoint image carries " + std::to_string(worst_n) +
                    " worst-miss records (profiler keeps at most " +
                    std::to_string(obs::DeadlineProfiler::kWorstRecords) + ")",
                ErrorCode::kJournalCorrupt);
  }
  dl.worst.resize(worst_n);
  for (auto& miss : dl.worst) {
    miss.revolution = static_cast<std::int64_t>(r.u64());
    miss.time_s = r.f64();
    miss.exec_cycles = r.f64();
    miss.budget_cycles = r.f64();
  }
  cp.deadline.set_state(dl);

  const std::uint32_t states_n = r.u32();
  if (states_n != cp.states.size()) {
    throw Error("checkpoint image has " + std::to_string(states_n) +
                    " model states, session expects " +
                    std::to_string(cp.states.size()),
                ErrorCode::kJournalCorrupt);
  }
  for (auto& v : cp.states) v = r.f64();
  const std::uint32_t regs_n = r.u32();
  if (regs_n != cp.pipe_regs.size()) {
    throw Error("checkpoint image has " + std::to_string(regs_n) +
                    " pipeline registers, session expects " +
                    std::to_string(cp.pipe_regs.size()),
                ErrorCode::kJournalCorrupt);
  }
  for (auto& v : cp.pipe_regs) v = r.f64();
}

}  // namespace citl::serve
