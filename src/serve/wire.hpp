// citl-wire-v1: the session server's length-prefixed binary protocol.
//
// One frame on the wire is
//
//   u32  length      — bytes that follow (header + payload), little-endian
//   u8   version     — kWireVersion (1); anything else is kBadFrame
//   u8   opcode      — Opcode below; responses echo the request's opcode
//   u16  status      — citl::ErrorCode; requests send kOk, responses carry
//                      the same typed code an in-process caller would catch
//   u32  request_id  — echoed verbatim (client-side correlation)
//   u32  session_id  — 0 where no session applies (hello, create, stats)
//   ...  payload     — opcode-specific, layouts in docs/SERVING.md
//
// Every multi-byte integer is little-endian; every double travels as the
// raw IEEE-754 bit pattern of its binary64 value. That makes the protocol
// bit-transparent: a TurnRecord decoded from the wire compares bytewise
// equal to the record the engine produced, which is what the byte-identity
// acceptance tests pin (a session stepped over the wire must be
// bit-identical to the in-process library path).
//
// Encoding/decoding never touches sockets: WireWriter/WireReader work on
// byte buffers and FrameParser incrementally splits a byte stream into
// frames, so the whole protocol layer is testable (and fuzzable) without a
// server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"
#include "core/error.hpp"
#include "hil/turnloop.hpp"

namespace citl::serve {

inline constexpr std::uint8_t kWireVersion = 1;
/// Header bytes after the length prefix.
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound on the length prefix: a frame claiming more is malformed
/// (kBadFrame), not a request to allocate 4 GiB.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Request/response operations. Wire-stable like ErrorCode: never renumber,
/// only append.
enum class Opcode : std::uint8_t {
  kHello = 0,          ///< protocol handshake; response payload: magic string
  kCreateSession = 1,  ///< payload: SessionConfig; response: session header
  kSetParam = 2,       ///< name + value (kernel parameter register)
  kGetParam = 3,       ///< name; response: value
  kSetState = 4,       ///< name + value (loop-carried state)
  kGetState = 5,       ///< name; response: value
  kEnableControl = 6,  ///< u8 on/off: open/close the phase loop
  kStep = 7,           ///< u32 turns; response: TurnRecord stream
  kSnapshot = 8,       ///< response: u32 snapshot id
  kRestore = 9,        ///< u32 snapshot id
  kDestroySession = 10,
  kStats = 11,         ///< runtime-wide stats (session_id 0)
  /// Re-attach to a journalled session after a reconnect (empty request
  /// payload; response: f64 time_s + u64 turn + u64 last applied step
  /// sequence number, so the client resynchronises its exactly-once step
  /// counter with the server's journal).
  kAttachSession = 12,
};

[[nodiscard]] const char* opcode_name(Opcode op) noexcept;

/// One decoded frame (header + payload), direction-agnostic.
struct Frame {
  std::uint8_t version = kWireVersion;
  Opcode opcode = Opcode::kHello;
  ErrorCode status = ErrorCode::kOk;
  std::uint32_t request_id = 0;
  std::uint32_t session_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialises a frame, length prefix included.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental stream-to-frame splitter. feed() appends raw bytes; next()
/// yields completed frames in order. Malformed input — unknown version, a
/// length prefix shorter than the header or larger than kMaxFrameBytes —
/// throws Error{kBadFrame} and poisons the parser (the server answers with
/// a kBadFrame status and closes the connection).
class FrameParser {
 public:
  void feed(const std::uint8_t* data, std::size_t len);
  /// Extracts the next complete frame, or nullopt if more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();
  /// Unconsumed bytes waiting for a complete frame.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ already handed out
};

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw binary64 bit pattern — the bit-transparent double encoding.
  void f64(double v);
  /// u32 length + bytes, no terminator.
  void str(std::string_view s);
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader. Reading past the end (a
/// truncated payload) throws Error{kBadFrame} naming the opcode's field
/// context — malformed input is a typed protocol error, never UB.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }
  /// Trailing bytes after the fields a decoder consumed are malformed input.
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

// --- DTO encodings --------------------------------------------------------

/// SessionConfig payload layout (create request). Fixed field order; the
/// decoder rejects trailing bytes, so v1 frames are exactly this shape.
void encode_session_config(WireWriter& w, const api::SessionConfig& config);
[[nodiscard]] api::SessionConfig decode_session_config(WireReader& r);

/// TurnRecord as 6 consecutive binary64 bit patterns (48 bytes).
void encode_turn_record(WireWriter& w, const hil::TurnRecord& rec);
[[nodiscard]] hil::TurnRecord decode_turn_record(WireReader& r);

}  // namespace citl::serve
