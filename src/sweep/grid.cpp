#include "sweep/grid.hpp"

#include <utility>

#include "core/units.hpp"

namespace citl::sweep {

namespace {

/// Accessors into whichever engine configuration the scenario uses, so one
/// grid expansion serves both.
ctrl::ControllerConfig& controller_of(Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel ? s.turnloop.controller
                                                : s.framework.controller;
}

std::optional<ctrl::PhaseJumpProgramme>& jumps_of(Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel ? s.turnloop.jumps
                                                : s.framework.jumps;
}

cgra::BeamKernelConfig& kernel_of(Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel ? s.turnloop.kernel
                                                : s.framework.kernel;
}

fault::FaultPlan& faults_of(Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel ? s.turnloop.faults
                                                : s.framework.faults;
}

hil::SupervisorConfig& supervisor_of(Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel ? s.turnloop.supervisor
                                                : s.framework.supervisor;
}

}  // namespace

ScenarioGridBuilder::ScenarioGridBuilder(Scenario base)
    : base_(std::move(base)) {}

ScenarioGridBuilder ScenarioGridBuilder::sample_accurate(
    hil::FrameworkConfig base) {
  Scenario s;
  s.engine = ScenarioEngine::kSampleAccurate;
  s.framework = std::move(base);
  return ScenarioGridBuilder(std::move(s));
}

ScenarioGridBuilder ScenarioGridBuilder::turn_level(hil::TurnLoopConfig base) {
  Scenario s;
  s.engine = ScenarioEngine::kTurnLevel;
  s.turnloop = std::move(base);
  return ScenarioGridBuilder(std::move(s));
}

ScenarioGridBuilder& ScenarioGridBuilder::gains(std::vector<double> values) {
  gains_ = std::move(values);
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::jump_amplitudes_deg(
    std::vector<double> values) {
  jumps_deg_ = std::move(values);
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::jump_timing(double interval_s,
                                                      double start_s) {
  jump_interval_s_ = interval_s;
  jump_start_s_ = start_s;
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::harmonics(std::vector<int> values) {
  harmonics_ = std::move(values);
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::species(
    std::vector<phys::Ion> values) {
  species_ = std::move(values);
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::fault_plans(
    std::vector<fault::FaultPlan> values) {
  fault_plans_ = std::move(values);
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::supervisor(
    hil::SupervisorConfig config) {
  supervisor_of(base_) = config;
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::oracle(oracle::OracleSpec spec) {
  base_.oracle = spec;
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::duration_s(double seconds) {
  base_.duration_s = seconds;
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::f_sync_nominal_hz(double hz) {
  base_.f_sync_nominal_hz = hz;
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::ensemble_reference(bool on) {
  base_.ensemble_reference = on;
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::name_prefix(std::string prefix) {
  prefix_ = std::move(prefix);
  return *this;
}

ScenarioGridBuilder& ScenarioGridBuilder::mutate(
    std::function<void(Scenario&)> fn) {
  mutate_ = std::move(fn);
  return *this;
}

std::size_t ScenarioGridBuilder::size() const noexcept {
  const auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
  return dim(jumps_deg_.size()) * dim(gains_.size()) *
         dim(harmonics_.size()) * dim(species_.size()) *
         dim(fault_plans_.size());
}

std::vector<Scenario> ScenarioGridBuilder::build() const {
  // Unset axes contribute one pass-through point and no name part.
  const std::size_t nj = jumps_deg_.empty() ? 1 : jumps_deg_.size();
  const std::size_t ng = gains_.empty() ? 1 : gains_.size();
  const std::size_t nh = harmonics_.empty() ? 1 : harmonics_.size();
  const std::size_t ns = species_.empty() ? 1 : species_.size();
  const std::size_t nf = fault_plans_.empty() ? 1 : fault_plans_.size();

  std::vector<Scenario> out;
  out.reserve(nj * ng * nh * ns * nf);
  for (std::size_t j = 0; j < nj; ++j) {
    for (std::size_t g = 0; g < ng; ++g) {
      for (std::size_t h = 0; h < nh; ++h) {
        for (std::size_t i = 0; i < ns; ++i) {
          for (std::size_t f = 0; f < nf; ++f) {
            Scenario s = base_;
            std::string name = prefix_;
            if (!jumps_deg_.empty()) {
              jumps_of(s) = ctrl::PhaseJumpProgramme(
                  deg_to_rad(jumps_deg_[j]), jump_interval_s_, jump_start_s_);
              name += "jump" +
                      std::to_string(static_cast<int>(jumps_deg_[j])) + "deg";
            }
            if (!gains_.empty()) {
              controller_of(s).gain = gains_[g];
              if (!name.empty() && name.back() != '_') name += '_';
              // The paper's gains are negative; "gain5" means -5 (the sign
              // is part of the loop convention, not worth repeating in
              // names).
              name += "gain" + std::to_string(static_cast<int>(-gains_[g]));
            }
            if (!harmonics_.empty()) {
              kernel_of(s).ring.harmonic = harmonics_[h];
              if (!name.empty() && name.back() != '_') name += '_';
              name += "h" + std::to_string(harmonics_[h]);
            }
            if (!species_.empty()) {
              kernel_of(s).ion = species_[i];
              if (!name.empty() && name.back() != '_') name += '_';
              name += species_[i].name;
            }
            if (!fault_plans_.empty()) {
              faults_of(s) = fault_plans_[f];
              if (!name.empty() && name.back() != '_') name += '_';
              name += fault_plans_[f].name.empty()
                          ? "plan" + std::to_string(f)
                          : fault_plans_[f].name;
            }
            s.name = name.empty() ? "scenario" + std::to_string(out.size())
                                  : std::move(name);
            if (mutate_) mutate_(s);
            out.push_back(std::move(s));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace citl::sweep
