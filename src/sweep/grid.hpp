// Fluent builder for cartesian scenario grids.
//
// Sweeps explore a grid of operating points around the paper's experiment —
// controller gains × jump amplitudes × harmonics × species. Hand-rolling the
// nested loops (and keeping the generated names consistent) was repeated in
// every example and test; the builder owns the cartesian product, the
// name scheme ("jump8deg_gain5", extended with "_h4" / "_238U28+" when those
// axes are swept) and the per-scenario plumbing, for either engine.
//
//   sweep::SweepConfig config;
//   config.scenarios = sweep::ScenarioGridBuilder::sample_accurate(base)
//                          .jump_amplitudes_deg({4, 8, 12})
//                          .gains({-3, -5, -7})
//                          .duration_s(8e-3)
//                          .build();
//
// Axes left unset keep the base configuration's value and add nothing to
// the scenario names. Scenario order is deterministic: jump amplitudes
// outermost, then gains, harmonics, species, fault plans (innermost — a
// fault campaign runs every plan against every operating point).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "phys/ion.hpp"
#include "sweep/sweep.hpp"

namespace citl::sweep {

class ScenarioGridBuilder {
 public:
  /// Grid of sample-accurate (hil::Framework) scenarios over `base`.
  [[nodiscard]] static ScenarioGridBuilder sample_accurate(
      hil::FrameworkConfig base);
  /// Grid of turn-level (hil::TurnLoop) scenarios over `base`.
  [[nodiscard]] static ScenarioGridBuilder turn_level(hil::TurnLoopConfig base);

  /// Controller gains to sweep (ctrl::ControllerConfig::gain).
  ScenarioGridBuilder& gains(std::vector<double> values);
  /// Phase-jump amplitudes [deg]; each scenario gets a PhaseJumpProgramme
  /// with this amplitude and the builder's interval/start (jump_timing()).
  ScenarioGridBuilder& jump_amplitudes_deg(std::vector<double> values);
  /// Interval and start time of the jump programme (defaults 1 s / 1 ms —
  /// one jump early in the run, like the §V machine experiment).
  ScenarioGridBuilder& jump_timing(double interval_s, double start_s);
  /// Harmonic numbers to sweep (ring.harmonic).
  ScenarioGridBuilder& harmonics(std::vector<int> values);
  /// Ion species to sweep (kernel.ion).
  ScenarioGridBuilder& species(std::vector<phys::Ion> values);
  /// Fault campaigns to sweep: every scenario point is run once per plan
  /// (innermost axis; plan names suffix the scenario names). An entry with
  /// an empty plan is the healthy control arm.
  ScenarioGridBuilder& fault_plans(std::vector<fault::FaultPlan> values);
  /// Supervisor configuration applied to every scenario (typically enabled
  /// together with fault_plans()).
  ScenarioGridBuilder& supervisor(hil::SupervisorConfig config);
  /// Differential-oracle spec applied to every scenario (turn-level grids
  /// only; run_sweep rejects the combination with a sample-accurate engine).
  /// Adds the max_ulp_err / first_divergent_turn metric columns.
  ScenarioGridBuilder& oracle(oracle::OracleSpec spec);

  ScenarioGridBuilder& duration_s(double seconds);
  ScenarioGridBuilder& f_sync_nominal_hz(double hz);
  ScenarioGridBuilder& ensemble_reference(bool on);
  /// Prefix prepended to every generated scenario name.
  ScenarioGridBuilder& name_prefix(std::string prefix);
  /// Final per-scenario hook, applied after all axes: arbitrary adjustments
  /// the axes do not cover (e.g. detector selection, noise).
  ScenarioGridBuilder& mutate(std::function<void(Scenario&)> fn);

  /// Number of scenarios build() will produce.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::vector<Scenario> build() const;

 private:
  explicit ScenarioGridBuilder(Scenario base);

  Scenario base_;
  std::vector<double> gains_;
  std::vector<double> jumps_deg_;
  std::vector<int> harmonics_;
  std::vector<phys::Ion> species_;
  std::vector<fault::FaultPlan> fault_plans_;
  double jump_interval_s_ = 1.0;
  double jump_start_s_ = 1.0e-3;
  std::string prefix_;
  std::function<void(Scenario&)> mutate_;
};

}  // namespace citl::sweep
