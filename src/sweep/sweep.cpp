#include "sweep/sweep.hpp"

#include <chrono>
#include <cmath>
#include <set>

#include "core/units.hpp"
#include "ctrl/controller.hpp"
#include "hil/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/ensemble.hpp"
#include "phys/relativity.hpp"
#include "phys/synchrotron.hpp"

namespace citl::sweep {

namespace {

/// Ground-truth run: the same stimulus and controller as the HIL framework,
/// applied to a serial many-particle ensemble (cf. run_mde_reference, but
/// driven from the scenario's FrameworkConfig and the scenario seed).
void run_ensemble_reference(const Scenario& scenario, std::uint64_t seed,
                            ScenarioResult& out) {
  const auto& fc = scenario.framework;
  const double gamma0 = phys::gamma_from_revolution_frequency(
      fc.f_ref_hz, fc.kernel.ring.circumference_m);
  const double t_rev = 1.0 / fc.f_ref_hz;
  const double omega_gap =
      kTwoPi * fc.f_ref_hz * static_cast<double>(fc.kernel.ring.harmonic);

  phys::EnsembleConfig ec;
  ec.ion = fc.kernel.ion;
  ec.ring = fc.kernel.ring;
  ec.initial_gamma_r = gamma0;
  ec.n_particles = scenario.ensemble_particles;
  ec.seed = seed;
  phys::EnsembleTracker ensemble(ec);  // serial: deterministic per scenario
  const double matched_ratio = phys::matched_dt_per_dgamma_s(
      ec.ion, ec.ring, gamma0, fc.gap_voltage_v);
  ensemble.populate_gaussian(scenario.ensemble_sigma_dt_s / matched_ratio,
                             scenario.ensemble_sigma_dt_s);

  ctrl::BeamPhaseController controller(fc.controller);
  ctrl::PhaseDecimator decimator(static_cast<std::size_t>(
      std::lround(fc.f_ref_hz / fc.controller.sample_rate_hz)));

  const auto turns =
      static_cast<std::int64_t>(scenario.duration_s * fc.f_ref_hz);
  constexpr std::int64_t kRecordEvery = 8;
  std::vector<double> ts, phases;
  ts.reserve(static_cast<std::size_t>(turns / kRecordEvery) + 1);
  phases.reserve(ts.capacity());

  double t = 0.0, ctrl_phase = 0.0, correction_hz = 0.0;
  for (std::int64_t n = 0; n < turns; ++n) {
    const double jump = fc.jumps ? fc.jumps->phase_rad(t) : 0.0;
    const double gap_phase = jump + ctrl_phase;
    ensemble.step(phys::SineWaveform{fc.gap_voltage_v, omega_gap, gap_phase});
    const double phase = wrap_angle(ensemble.centroid_dt_s() * omega_gap);
    if (decimator.feed(wrap_angle(phase + gap_phase))) {
      correction_hz = fc.control_enabled
                          ? controller.update(decimator.output())
                          : 0.0;
    }
    if (fc.control_enabled) ctrl_phase += kTwoPi * correction_hz * t_rev;
    t += t_rev;
    if (n % kRecordEvery == 0) {
      ts.push_back(t);
      phases.push_back(phase);
    }
  }

  const double jump_s = fc.jumps ? fc.jumps->start_s() : 0.0;
  const double t_sync = 1.0 / scenario.f_sync_nominal_hz;
  out.f_sync_reference_hz = hil::estimate_oscillation_frequency_hz(
      ts, phases, jump_s + 0.2e-3,
      std::min(scenario.duration_s, jump_s + 6.0 * t_sync));
  out.reference_first_swing_rad =
      hil::peak_to_peak(ts, phases, jump_s, jump_s + 1.2 * t_sync);
}

ScenarioResult run_scenario(const Scenario& scenario, std::size_t index,
                            std::uint64_t seed, KernelCache& cache,
                            bool collect_traces) {
  ScenarioResult out;
  out.name = scenario.name;
  out.index = index;
  out.seed = seed;

  hil::FrameworkConfig fc = scenario.framework;
  fc.noise_seed = seed;
  auto kernel = cache.get(hil::Framework::effective_kernel_config(fc),
                          fc.arch);

  const auto wall_begin = std::chrono::steady_clock::now();
  hil::Framework fw(fc, std::move(kernel));
  {
    // One span per scenario task: the trace shows which worker ran which
    // scenario and for how long. scenario.name outlives the span.
    obs::ScopedSpan span(scenario.name);
    fw.run_seconds(scenario.duration_s);
  }
  const auto wall_end = std::chrono::steady_clock::now();

  MetricWindows windows;
  windows.jump_s = fc.jumps ? fc.jumps->start_s() : 0.0;
  windows.end_s = scenario.duration_s;
  windows.f_sync_nominal_hz = scenario.f_sync_nominal_hz;
  out.metrics = extract_phase_metrics(fw.phase_trace().times(),
                                      fw.phase_trace().values(), windows);
  out.metrics.realtime_violations = fw.realtime_violations();
  out.metrics.cgra_runs = fw.cgra_runs();
  out.metrics.sim_time_s = scenario.duration_s;
  out.metrics.schedule_cycles =
      static_cast<std::int64_t>(fw.kernel().schedule.length);
  const obs::DeadlineStats deadline = fw.deadline().stats();
  out.metrics.deadline_headroom_min = deadline.headroom_min;
  out.metrics.deadline_headroom_p50 = deadline.headroom_p50;
  out.metrics.deadline_headroom_p99 = deadline.headroom_p99;
  out.metrics.worst_overrun_cycles = deadline.worst_overrun_cycles;
  out.metrics.wall_time_s =
      std::chrono::duration<double>(wall_end - wall_begin).count();
  out.metrics.wall_over_sim =
      scenario.duration_s > 0.0
          ? out.metrics.wall_time_s / scenario.duration_s
          : 0.0;

  if (collect_traces) {
    out.trace_time_s = fw.phase_trace().times();
    out.trace_phase_rad = fw.phase_trace().values();
  }
  if (scenario.ensemble_reference) {
    run_ensemble_reference(scenario, seed, out);
  }
  return out;
}

}  // namespace

std::uint64_t scenario_seed(std::uint64_t master, std::size_t index) noexcept {
  // splitmix64 over (master, index): well-spread, stable, order-free.
  std::uint64_t z = master +
                    0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SweepResult run_sweep(const SweepConfig& config, ThreadPool* pool) {
  const auto wall_begin = std::chrono::steady_clock::now();

  KernelCache local_cache;
  KernelCache& cache = config.cache != nullptr ? *config.cache : local_cache;
  const std::size_t compilations_before = cache.compilations();

  SweepResult result;
  result.scenarios.resize(config.scenarios.size());

  std::set<std::string> distinct;
  for (const auto& scenario : config.scenarios) {
    distinct.insert(kernel_cache_key(
        hil::Framework::effective_kernel_config(scenario.framework),
        scenario.framework.arch));
  }
  result.distinct_kernels = distinct.size();

  ThreadPool local_pool(pool != nullptr ? 1 : config.threads);
  ThreadPool& runner = pool != nullptr ? *pool : local_pool;
  result.threads_used = runner.size();

  // Observability: completed-scenario counter, pending-queue gauge and a
  // Perfetto counter track. None of it reaches the deterministic results.
  obs::Counter& completed =
      obs::Registry::global().counter("sweep.scenarios_completed");
  obs::Gauge& pending_gauge =
      obs::Registry::global().gauge("sweep.scenarios_pending");
  pending_gauge.set(static_cast<double>(config.scenarios.size()));
  std::atomic<std::size_t> pending{config.scenarios.size()};

  // One scenario per index; slot `i` is written only by the task running
  // scenario i, and every input of that task is derived from (config, i) —
  // this is what makes the sweep schedule-independent.
  runner.parallel_for(0, config.scenarios.size(), [&](std::size_t i) {
    result.scenarios[i] =
        run_scenario(config.scenarios[i], i, scenario_seed(config.seed, i),
                     cache, config.collect_traces);
    completed.add();
    const auto left =
        static_cast<double>(pending.fetch_sub(1, std::memory_order_relaxed) - 1);
    pending_gauge.set(left);
    obs::Tracer::global().counter("sweep.scenarios_pending", left);
  });

  result.kernel_compilations = cache.compilations() - compilations_before;
  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  return result;
}

}  // namespace citl::sweep
