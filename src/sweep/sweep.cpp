#include "sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <span>

#include "cgra/batch.hpp"
#include "core/error.hpp"
#include "core/units.hpp"
#include "ctrl/controller.hpp"
#include "hil/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/ensemble.hpp"
#include "phys/relativity.hpp"
#include "phys/synchrotron.hpp"

namespace citl::sweep {

namespace {

/// The fields of either engine configuration the ensemble reference needs:
/// both engines drive the same stimulus and controller, just at different
/// fidelities, and the ground truth is engine-agnostic.
struct ReferenceDrive {
  const cgra::BeamKernelConfig* kernel;
  double f_ref_hz;
  double gap_voltage_v;
  const ctrl::ControllerConfig* controller;
  const std::optional<ctrl::PhaseJumpProgramme>* jumps;
  bool control_enabled;
};

ReferenceDrive reference_drive(const Scenario& scenario) {
  if (scenario.engine == ScenarioEngine::kTurnLevel) {
    const auto& tc = scenario.turnloop;
    return {&tc.kernel,     tc.f_ref_hz,        tc.gap_voltage_v,
            &tc.controller, &tc.jumps,          tc.control_enabled};
  }
  const auto& fc = scenario.framework;
  return {&fc.kernel,     fc.f_ref_hz,        fc.gap_voltage_v,
          &fc.controller, &fc.jumps,          fc.control_enabled};
}

/// Ground-truth run: the same stimulus and controller as the HIL loop,
/// applied to a serial many-particle ensemble (cf. run_mde_reference, but
/// driven from the scenario's configuration and the scenario seed).
void run_ensemble_reference(const Scenario& scenario, std::uint64_t seed,
                            ScenarioResult& out) {
  const ReferenceDrive drive = reference_drive(scenario);
  const double gamma0 = phys::gamma_from_revolution_frequency(
      drive.f_ref_hz, drive.kernel->ring.circumference_m);
  const double t_rev = 1.0 / drive.f_ref_hz;
  const double omega_gap =
      kTwoPi * drive.f_ref_hz * static_cast<double>(drive.kernel->ring.harmonic);

  phys::EnsembleConfig ec;
  ec.ion = drive.kernel->ion;
  ec.ring = drive.kernel->ring;
  ec.initial_gamma_r = gamma0;
  ec.n_particles = scenario.ensemble_particles;
  ec.seed = seed;
  phys::EnsembleTracker ensemble(ec);  // serial: deterministic per scenario
  const double matched_ratio = phys::matched_dt_per_dgamma_s(
      ec.ion, ec.ring, gamma0, drive.gap_voltage_v);
  ensemble.populate_gaussian(scenario.ensemble_sigma_dt_s / matched_ratio,
                             scenario.ensemble_sigma_dt_s);

  ctrl::BeamPhaseController controller(*drive.controller);
  ctrl::PhaseDecimator decimator(static_cast<std::size_t>(
      std::lround(drive.f_ref_hz / drive.controller->sample_rate_hz)));

  const auto turns =
      static_cast<std::int64_t>(scenario.duration_s * drive.f_ref_hz);
  constexpr std::int64_t kRecordEvery = 8;
  std::vector<double> ts, phases;
  ts.reserve(static_cast<std::size_t>(turns / kRecordEvery) + 1);
  phases.reserve(ts.capacity());

  double t = 0.0, ctrl_phase = 0.0, correction_hz = 0.0;
  for (std::int64_t n = 0; n < turns; ++n) {
    const double jump = *drive.jumps ? (*drive.jumps)->phase_rad(t) : 0.0;
    const double gap_phase = jump + ctrl_phase;
    ensemble.step(
        phys::SineWaveform{drive.gap_voltage_v, omega_gap, gap_phase});
    const double phase = wrap_angle(ensemble.centroid_dt_s() * omega_gap);
    if (decimator.feed(wrap_angle(phase + gap_phase))) {
      correction_hz = drive.control_enabled
                          ? controller.update(decimator.output())
                          : 0.0;
    }
    if (drive.control_enabled) ctrl_phase += kTwoPi * correction_hz * t_rev;
    t += t_rev;
    if (n % kRecordEvery == 0) {
      ts.push_back(t);
      phases.push_back(phase);
    }
  }

  const double jump_s = *drive.jumps ? (*drive.jumps)->start_s() : 0.0;
  const double t_sync = 1.0 / scenario.f_sync_nominal_hz;
  out.f_sync_reference_hz = hil::estimate_oscillation_frequency_hz(
      ts, phases, jump_s + 0.2e-3,
      std::min(scenario.duration_s, jump_s + 6.0 * t_sync));
  out.reference_first_swing_rad =
      hil::peak_to_peak(ts, phases, jump_s, jump_s + 1.2 * t_sync);
}

// --- kernel selection per scenario ----------------------------------------

KernelKind scenario_kernel_kind(const Scenario& s) {
  if (s.engine == ScenarioEngine::kTurnLevel) {
    return s.turnloop.synthesize_waveform ? KernelKind::kAnalytic
                                          : KernelKind::kSampled;
  }
  return KernelKind::kSampled;
}

cgra::BeamKernelConfig scenario_kernel_config(const Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel
             ? hil::TurnLoop::effective_kernel_config(s.turnloop)
             : hil::Framework::effective_kernel_config(s.framework);
}

const cgra::CgraArch& scenario_arch(const Scenario& s) {
  return s.engine == ScenarioEngine::kTurnLevel ? s.turnloop.arch
                                                : s.framework.arch;
}

std::shared_ptr<const cgra::CompiledKernel> scenario_kernel(
    KernelCache& cache, const Scenario& s) {
  return cache.get(scenario_kernel_config(s), scenario_arch(s),
                   scenario_kernel_kind(s));
}

/// Lockstep-group key: scenarios may share a lane batch only when they run
/// the same compiled kernel through the same engine and execution tier
/// (lanes of one BatchedCgraMachine all run one tier).
std::string scenario_group_key(const Scenario& s) {
  std::string key =
      s.engine == ScenarioEngine::kTurnLevel ? "turn|" : "tick|";
  key += kernel_cache_key(scenario_kernel_config(s), scenario_arch(s),
                          scenario_kernel_kind(s));
  key += '|';
  key += cgra::exec_tier_name(s.engine == ScenarioEngine::kTurnLevel
                                  ? s.turnloop.exec_tier
                                  : s.framework.exec_tier);
  return key;
}

// --- shared metric extraction ----------------------------------------------

void fill_windows(const Scenario& scenario, double jump_s,
                  MetricWindows& windows) {
  windows.jump_s = jump_s;
  windows.end_s = scenario.duration_s;
  windows.f_sync_nominal_hz = scenario.f_sync_nominal_hz;
}

[[nodiscard]] double finite_fraction(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  std::size_t n = 0;
  for (const double v : xs) {
    if (std::isfinite(v)) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

/// Fault-campaign columns: injector counters plus supervisor episode stats.
/// Without a supervisor the finite-output ratio falls back to the fraction
/// of finite phase samples — exactly 1.0 on a healthy run either way, so the
/// healthy-path byte-identity regression holds.
void fill_fault_metrics(const fault::FaultInjector* injector,
                        const hil::Supervisor* supervisor,
                        std::span<const double> phases, ScenarioMetrics& m) {
  if (injector != nullptr) m.faults_injected = injector->windows_entered();
  if (supervisor != nullptr) {
    const hil::SupervisorStats& s = supervisor->stats();
    m.faults_detected = s.faults_detected;
    m.faults_recovered = s.recoveries;
    m.time_to_recovery_turns = s.mean_time_to_recovery_turns();
    m.finite_output_ratio = s.finite_output_ratio();
  } else {
    m.finite_output_ratio = finite_fraction(phases);
  }
}

void finalize_framework_result(const Scenario& scenario, hil::Framework& fw,
                               double wall_s, bool collect_traces,
                               ScenarioResult& out) {
  MetricWindows windows;
  fill_windows(scenario,
               scenario.framework.jumps ? scenario.framework.jumps->start_s()
                                        : 0.0,
               windows);
  out.metrics = extract_phase_metrics(fw.phase_trace().times(),
                                      fw.phase_trace().values(), windows);
  out.metrics.realtime_violations = fw.realtime_violations();
  out.metrics.cgra_runs = fw.cgra_runs();
  out.metrics.sim_time_s = scenario.duration_s;
  out.metrics.schedule_cycles =
      static_cast<std::int64_t>(fw.kernel().schedule.length);
  const obs::DeadlineStats deadline = fw.deadline().stats();
  out.metrics.deadline_headroom_min = deadline.headroom_min;
  out.metrics.deadline_headroom_p50 = deadline.headroom_p50;
  out.metrics.deadline_headroom_p99 = deadline.headroom_p99;
  out.metrics.worst_overrun_cycles = deadline.worst_overrun_cycles;
  fill_fault_metrics(fw.injector(), fw.supervisor(),
                     fw.phase_trace().values(), out.metrics);
  out.metrics.wall_time_s = wall_s;
  out.metrics.wall_over_sim =
      scenario.duration_s > 0.0 ? wall_s / scenario.duration_s : 0.0;

  if (collect_traces) {
    out.trace_time_s = fw.phase_trace().times();
    out.trace_phase_rad = fw.phase_trace().values();
  }
}

void finalize_turn_result(const Scenario& scenario, hil::TurnLoop& loop,
                          std::vector<double>&& ts,
                          std::vector<double>&& phases, double wall_s,
                          bool collect_traces, ScenarioResult& out) {
  MetricWindows windows;
  fill_windows(scenario,
               scenario.turnloop.jumps ? scenario.turnloop.jumps->start_s()
                                       : 0.0,
               windows);
  out.metrics = extract_phase_metrics(ts, phases, windows);
  out.metrics.realtime_violations = loop.realtime_violations();
  out.metrics.cgra_runs = loop.turn();
  out.metrics.sim_time_s = scenario.duration_s;
  out.metrics.schedule_cycles =
      static_cast<std::int64_t>(loop.kernel().schedule.length);
  const obs::DeadlineStats deadline = loop.deadline().stats();
  out.metrics.deadline_headroom_min = deadline.headroom_min;
  out.metrics.deadline_headroom_p50 = deadline.headroom_p50;
  out.metrics.deadline_headroom_p99 = deadline.headroom_p99;
  out.metrics.worst_overrun_cycles = deadline.worst_overrun_cycles;
  fill_fault_metrics(loop.injector(), loop.supervisor(), phases, out.metrics);
  out.metrics.wall_time_s = wall_s;
  out.metrics.wall_over_sim =
      scenario.duration_s > 0.0 ? wall_s / scenario.duration_s : 0.0;

  if (collect_traces) {
    out.trace_time_s = std::move(ts);
    out.trace_phase_rad = std::move(phases);
  }
}

[[nodiscard]] std::int64_t turn_count(const Scenario& scenario) {
  return static_cast<std::int64_t>(scenario.duration_s *
                                   scenario.turnloop.f_ref_hz);
}

/// Opt-in oracle axis: re-runs the (turn-level) scenario through the spec's
/// fidelity pair and fills the two oracle metric columns. Runs identically
/// from the serial and the chunked path — the oracle constructs its own
/// loops from (scenario config, derived seed) alone, so the sweep's
/// byte-identity guarantee extends to these columns.
void run_scenario_oracle(const Scenario& scenario, std::uint64_t seed,
                         ScenarioMetrics& metrics) {
  if (!scenario.oracle.enabled) return;
  hil::TurnLoopConfig tc = scenario.turnloop;
  tc.noise_seed = seed;
  oracle::OracleConfig oc;
  oc.reference = scenario.oracle.reference;
  oc.candidate = scenario.oracle.candidate;
  oc.budget = scenario.oracle.budget;
  oc.checkpoint_stride = scenario.oracle.checkpoint_stride;
  oc.turns = std::max<std::int64_t>(1, turn_count(scenario));
  // Sweeps only report the columns; minimising and archiving a divergence is
  // the oracle_hunt driver's job.
  oc.shrink = false;
  const oracle::OracleReport rep = oracle::run_oracle(tc, oc);
  metrics.max_ulp_err = rep.max_ulp_err;
  metrics.first_divergent_turn = rep.first_divergent_turn;
}

// --- per-scenario (serial) runners ------------------------------------------

ScenarioResult run_framework_scenario(const Scenario& scenario,
                                      std::size_t index, std::uint64_t seed,
                                      KernelCache& cache,
                                      bool collect_traces) {
  ScenarioResult out;
  out.name = scenario.name;
  out.index = index;
  out.seed = seed;

  hil::FrameworkConfig fc = scenario.framework;
  fc.noise_seed = seed;
  auto kernel = cache.get(hil::Framework::effective_kernel_config(fc),
                          fc.arch);

  const auto wall_begin = std::chrono::steady_clock::now();
  hil::Framework fw(fc, std::move(kernel));
  {
    // One span per scenario task: the trace shows which worker ran which
    // scenario and for how long. scenario.name outlives the span.
    obs::ScopedSpan span(scenario.name);
    fw.run_seconds(scenario.duration_s);
  }
  const auto wall_end = std::chrono::steady_clock::now();

  finalize_framework_result(
      scenario, fw,
      std::chrono::duration<double>(wall_end - wall_begin).count(),
      collect_traces, out);
  if (scenario.ensemble_reference) {
    run_ensemble_reference(scenario, seed, out);
  }
  return out;
}

ScenarioResult run_turn_scenario(const Scenario& scenario, std::size_t index,
                                 std::uint64_t seed, KernelCache& cache,
                                 bool collect_traces) {
  ScenarioResult out;
  out.name = scenario.name;
  out.index = index;
  out.seed = seed;

  hil::TurnLoopConfig tc = scenario.turnloop;
  tc.noise_seed = seed;
  auto kernel = cache.get(hil::TurnLoop::effective_kernel_config(tc), tc.arch,
                          scenario_kernel_kind(scenario));

  const auto turns = turn_count(scenario);
  std::vector<double> ts, phases;
  ts.reserve(static_cast<std::size_t>(turns));
  phases.reserve(static_cast<std::size_t>(turns));

  const auto wall_begin = std::chrono::steady_clock::now();
  hil::TurnLoop loop(tc, std::move(kernel));
  {
    obs::ScopedSpan span(scenario.name);
    loop.run(turns, [&](const hil::TurnRecord& r) {
      ts.push_back(r.time_s);
      phases.push_back(r.phase_rad);
    });
  }
  const auto wall_end = std::chrono::steady_clock::now();

  finalize_turn_result(
      scenario, loop, std::move(ts), std::move(phases),
      std::chrono::duration<double>(wall_end - wall_begin).count(),
      collect_traces, out);
  run_scenario_oracle(scenario, seed, out.metrics);
  if (scenario.ensemble_reference) {
    run_ensemble_reference(scenario, seed, out);
  }
  return out;
}

ScenarioResult run_scenario(const Scenario& scenario, std::size_t index,
                            std::uint64_t seed, KernelCache& cache,
                            bool collect_traces) {
  return scenario.engine == ScenarioEngine::kTurnLevel
             ? run_turn_scenario(scenario, index, seed, cache, collect_traces)
             : run_framework_scenario(scenario, index, seed, cache,
                                      collect_traces);
}

// --- lockstep chunk drivers -------------------------------------------------

/// Runs one chunk of sample-accurate scenarios as lanes of a batched
/// machine: every framework runs in deferred-CGRA mode, parking at its
/// reference crossing; each round executes one batched kernel iteration
/// across all parked lanes and acknowledges them. Lanes that exhausted their
/// tick budget drop out of the active set (lane-masked execution keeps the
/// others bit-identical to the serial path).
void run_framework_chunk(const SweepConfig& config,
                         const std::vector<std::size_t>& members,
                         KernelCache& cache,
                         std::vector<ScenarioResult>& results) {
  const std::size_t n = members.size();
  const auto wall_begin = std::chrono::steady_clock::now();
  auto kernel = scenario_kernel(cache, config.scenarios[members[0]]);

  std::vector<std::unique_ptr<hil::Framework>> fws(n);
  std::vector<cgra::SensorBus*> buses(n);
  std::vector<Tick> end_tick(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Scenario& scenario = config.scenarios[members[k]];
    hil::FrameworkConfig fc = scenario.framework;
    fc.noise_seed = scenario_seed(config.seed, members[k]);
    fws[k] = std::make_unique<hil::Framework>(fc, kernel);
    fws[k]->set_cgra_deferred(true);
    buses[k] = &fws[k]->cgra_bus();
    end_tick[k] = kSampleClock.to_ticks(scenario.duration_s);
  }
  cgra::PerLaneBusAdapter adapter(std::move(buses));
  cgra::BatchedCgraMachine machine(
      *kernel, n, adapter, cgra::Precision::kFloat32,
      config.scenarios[members[0]].framework.exec_tier);
  for (std::size_t k = 0; k < n; ++k) {
    // Injected state faults and the supervisor's state guard act on this
    // framework's lane of the shared machine, not the idle owned one.
    fws[k]->attach_cgra_model(machine, k);
  }

  {
    obs::ScopedSpan span("sweep.batch_chunk");
    std::vector<std::uint32_t> active;
    active.reserve(n);
    std::vector<char> done(n, 0);
    for (;;) {
      active.clear();
      for (std::size_t k = 0; k < n; ++k) {
        if (done[k]) continue;
        const Tick remaining = end_tick[k] - fws[k]->now();
        if (remaining > 0 && fws[k]->run_until_cgra_request(remaining)) {
          active.push_back(static_cast<std::uint32_t>(k));
        } else {
          done[k] = 1;
        }
      }
      if (active.empty()) break;
      const unsigned exec =
          machine.run_iteration_lanes(active.data(), active.size());
      for (const std::uint32_t id : active) {
        fws[id]->complete_cgra_run(exec);
      }
    }
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count() /
      static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = members[k];
    const Scenario& scenario = config.scenarios[i];
    ScenarioResult& out = results[i];
    out.name = scenario.name;
    out.index = i;
    out.seed = scenario_seed(config.seed, i);
    finalize_framework_result(scenario, *fws[k], wall_s,
                              config.collect_traces, out);
    if (scenario.ensemble_reference) {
      run_ensemble_reference(scenario, out.seed, out);
    }
  }
}

/// Runs one chunk of turn-level scenarios in lockstep: each revolution,
/// every active loop presents its inputs (begin_turn), one batched kernel
/// iteration executes all active lanes, and every loop completes its
/// revolution (finish_turn).
void run_turn_chunk(const SweepConfig& config,
                    const std::vector<std::size_t>& members,
                    KernelCache& cache, std::vector<ScenarioResult>& results) {
  const std::size_t n = members.size();
  const auto wall_begin = std::chrono::steady_clock::now();
  auto kernel = scenario_kernel(cache, config.scenarios[members[0]]);

  std::vector<std::unique_ptr<hil::TurnLoop>> loops(n);
  std::vector<cgra::SensorBus*> buses(n);
  std::vector<std::int64_t> turns(n);
  std::vector<std::vector<double>> ts(n), phases(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Scenario& scenario = config.scenarios[members[k]];
    hil::TurnLoopConfig tc = scenario.turnloop;
    tc.noise_seed = scenario_seed(config.seed, members[k]);
    loops[k] = std::make_unique<hil::TurnLoop>(tc, kernel,
                                               hil::TurnLoop::ExternalModel{});
    buses[k] = &loops[k]->cgra_bus();
    turns[k] = turn_count(scenario);
    ts[k].reserve(static_cast<std::size_t>(turns[k]));
    phases[k].reserve(static_cast<std::size_t>(turns[k]));
  }
  cgra::PerLaneBusAdapter adapter(std::move(buses));
  cgra::BatchedCgraMachine machine(
      *kernel, n, adapter, cgra::Precision::kFloat32,
      config.scenarios[members[0]].turnloop.exec_tier);
  for (std::size_t k = 0; k < n; ++k) {
    loops[k]->attach_model(machine, k);
  }

  {
    obs::ScopedSpan span("sweep.batch_chunk");
    std::vector<std::uint32_t> active;
    active.reserve(n);
    for (;;) {
      active.clear();
      for (std::size_t k = 0; k < n; ++k) {
        if (loops[k]->turn() < turns[k] && !loops[k]->aborted()) {
          loops[k]->begin_turn();
          active.push_back(static_cast<std::uint32_t>(k));
        }
      }
      if (active.empty()) break;
      const unsigned exec =
          machine.run_iteration_lanes(active.data(), active.size());
      for (const std::uint32_t id : active) {
        const hil::TurnRecord r = loops[id]->finish_turn(exec);
        ts[id].push_back(r.time_s);
        phases[id].push_back(r.phase_rad);
      }
    }
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count() /
      static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = members[k];
    const Scenario& scenario = config.scenarios[i];
    ScenarioResult& out = results[i];
    out.name = scenario.name;
    out.index = i;
    out.seed = scenario_seed(config.seed, i);
    finalize_turn_result(scenario, *loops[k], std::move(ts[k]),
                         std::move(phases[k]), wall_s, config.collect_traces,
                         out);
    run_scenario_oracle(scenario, out.seed, out.metrics);
    if (scenario.ensemble_reference) {
      run_ensemble_reference(scenario, out.seed, out);
    }
  }
}

/// Partitions scenario indices into lockstep chunks: scenarios group by
/// (engine, kernel-cache key) in index order, each group splitting into runs
/// of at most `lanes`. The grouping is deterministic (ordered map, ascending
/// indices), so chunk composition never depends on thread scheduling.
std::vector<std::vector<std::size_t>> plan_chunks(
    const std::vector<Scenario>& scenarios, std::size_t lanes) {
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    groups[scenario_group_key(scenarios[i])].push_back(i);
  }
  std::vector<std::vector<std::size_t>> chunks;
  for (const auto& [key, members] : groups) {
    for (std::size_t p = 0; p < members.size(); p += lanes) {
      const std::size_t e = std::min(members.size(), p + lanes);
      chunks.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(p),
                          members.begin() + static_cast<std::ptrdiff_t>(e));
    }
  }
  return chunks;
}

}  // namespace

std::uint64_t scenario_seed(std::uint64_t master, std::size_t index) noexcept {
  // splitmix64 over (master, index): well-spread, stable, order-free.
  std::uint64_t z = master +
                    0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SweepResult run_sweep(const SweepConfig& config, ThreadPool* pool) {
  const auto wall_begin = std::chrono::steady_clock::now();

  KernelCache local_cache;
  KernelCache& cache = config.cache != nullptr ? *config.cache : local_cache;
  const std::size_t compilations_before = cache.compilations();

  for (const auto& scenario : config.scenarios) {
    if (scenario.oracle.enabled &&
        scenario.engine != ScenarioEngine::kTurnLevel) {
      throw ConfigError("sweep: scenario '" + scenario.name +
                        "' enables the differential oracle on a "
                        "sample-accurate engine; the oracle's fidelities are "
                        "all turn-granular", ErrorCode::kUnsupported);
    }
  }

  SweepResult result;
  result.scenarios.resize(config.scenarios.size());

  // Distinct-kernel accounting doubles as the attribution grouping: members
  // of one cache key share one compiled schedule, so one profile.
  std::map<std::string, std::vector<std::size_t>> distinct;
  for (std::size_t i = 0; i < config.scenarios.size(); ++i) {
    const auto& scenario = config.scenarios[i];
    distinct[kernel_cache_key(scenario_kernel_config(scenario),
                              scenario_arch(scenario),
                              scenario_kernel_kind(scenario))]
        .push_back(i);
  }
  result.distinct_kernels = distinct.size();

  ThreadPool local_pool(pool != nullptr ? 1 : config.threads);
  ThreadPool& runner = pool != nullptr ? *pool : local_pool;
  result.threads_used = runner.size();

  // Observability: completed-scenario counter, pending-queue gauge and a
  // Perfetto counter track. None of it reaches the deterministic results.
  obs::Counter& completed =
      obs::Registry::global().counter("sweep.scenarios_completed");
  obs::Gauge& pending_gauge =
      obs::Registry::global().gauge("sweep.scenarios_pending");
  pending_gauge.set(static_cast<double>(config.scenarios.size()));
  std::atomic<std::size_t> pending{config.scenarios.size()};
  const auto account_done = [&](std::size_t count) {
    completed.add(count);
    const auto left = static_cast<double>(
        pending.fetch_sub(count, std::memory_order_relaxed) - count);
    pending_gauge.set(left);
    obs::Tracer::global().counter("sweep.scenarios_pending", left);
  };

  if (config.batch_lanes > 1) {
    // Batched path: chunks of kernel-sharing scenarios are the unit of work.
    const auto chunks = plan_chunks(config.scenarios, config.batch_lanes);
    result.batch_chunks = chunks.size();
    obs::Registry::global().counter("sweep.batch.chunks").add(chunks.size());
    runner.parallel_for(0, chunks.size(), [&](std::size_t c) {
      const auto& members = chunks[c];
      if (config.scenarios[members[0]].engine == ScenarioEngine::kTurnLevel) {
        run_turn_chunk(config, members, cache, result.scenarios);
      } else {
        run_framework_chunk(config, members, cache, result.scenarios);
      }
      account_done(members.size());
    });
  } else {
    // One scenario per index; slot `i` is written only by the task running
    // scenario i, and every input of that task is derived from (config, i) —
    // this is what makes the sweep schedule-independent.
    runner.parallel_for(0, config.scenarios.size(), [&](std::size_t i) {
      result.scenarios[i] =
          run_scenario(config.scenarios[i], i, scenario_seed(config.seed, i),
                       cache, config.collect_traces);
      account_done(1);
    });
  }

  // Per-kernel cycle attribution: static schedule profile × the summed
  // cgra_runs of the member scenarios. Ordered by cache key (the std::map),
  // so the report section is deterministic at any thread/lane count.
  for (const auto& [key, members] : distinct) {
    KernelAttribution ka;
    // peek(): the scenarios already resolved every key, and the attribution
    // pass must not inflate the cache's lookup/hit statistics.
    auto kernel = cache.peek(key);
    if (kernel == nullptr) {
      kernel = scenario_kernel(cache, config.scenarios[members[0]]);
    }
    ka.profile = cgra::kernel_cycle_profile(*kernel);
    for (const std::size_t idx : members) {
      ka.iterations +=
          static_cast<std::uint64_t>(result.scenarios[idx].metrics.cgra_runs);
    }
    ka.scenario_indices = members;
    result.attribution.push_back(std::move(ka));
  }

  result.kernel_compilations = cache.compilations() - compilations_before;
  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  return result;
}

}  // namespace citl::sweep
