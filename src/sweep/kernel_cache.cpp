#include "sweep/kernel_cache.hpp"

#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace citl::sweep {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a;", v);
  out += buf;
}

void append_int(std::string& out, long long v) {
  out += std::to_string(v);
  out += ';';
}

}  // namespace

std::string kernel_cache_key(const cgra::BeamKernelConfig& config,
                             const cgra::CgraArch& arch, KernelKind kind) {
  std::string key;
  key.reserve(256);
  // Kernel generator first: the same config compiles to different programs
  // for the sampled / analytic / ramp sources.
  switch (kind) {
    case KernelKind::kSampled: key += "sampled;"; break;
    case KernelKind::kAnalytic: key += "analytic;"; break;
    case KernelKind::kRamp: key += "ramp;"; break;
  }
  // Ion: the kernel bakes Q/(mc^2) into constants; the name is cosmetic but
  // cheap to include and makes keys self-describing in debug dumps.
  key += config.ion.name;
  key += ';';
  append_double(key, config.ion.mass_ev);
  append_int(key, config.ion.charge_number);
  // Ring.
  append_double(key, config.ring.circumference_m);
  append_double(key, config.ring.alpha_c);
  append_int(key, config.ring.harmonic);
  // Kernel generation options.
  append_double(key, config.gamma0);
  append_double(key, config.v_scale);
  append_int(key, config.n_bunches);
  append_int(key, config.pipelined ? 1 : 0);
  append_int(key, config.interpolate ? 1 : 0);
  append_double(key, config.sample_rate_hz);
  // Architecture: grid shape, per-PE capabilities, latencies, routing, clock.
  key += '|';
  append_int(key, arch.rows);
  append_int(key, arch.cols);
  for (const auto& pe : arch.pes) {
    key += static_cast<char>('0' + (pe.alu ? 1 : 0) + (pe.mul ? 2 : 0) +
                             (pe.divsqrt ? 4 : 0));
    key += static_cast<char>('0' + (pe.cordic ? 1 : 0) + (pe.mem ? 2 : 0));
  }
  key += ';';
  const auto& lat = arch.latency;
  append_int(key, lat.alu);
  append_int(key, lat.mul);
  append_int(key, lat.div);
  append_int(key, lat.sqrt);
  append_int(key, lat.load);
  append_int(key, lat.store);
  append_int(key, lat.cordic);
  append_int(key, lat.route_hop);
  append_int(key, lat.source);
  append_int(key, arch.route_ports_per_pe);
  append_double(key, arch.clock_hz);
  return key;
}

std::shared_ptr<const cgra::CompiledKernel> KernelCache::get(
    const cgra::BeamKernelConfig& config, const cgra::CgraArch& arch,
    KernelKind kind) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::string key = kernel_cache_key(config, arch, kind);

  std::promise<std::shared_ptr<const cgra::CompiledKernel>> promise;
  Entry entry;
  bool owner = false;
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = promise.get_future().share();
      owner = true;
    }
    entry = it->second;
  }

  // Hit/miss from the sweep's point of view: only the first requester of a
  // key pays the compilation; everyone else (including waiters on the
  // in-flight compile) shares the cached result.
  static obs::Counter& hits =
      obs::Registry::global().counter("sweep.kernel_cache.hits");
  static obs::Counter& misses =
      obs::Registry::global().counter("sweep.kernel_cache.misses");
  if (!owner) {
    hits.add();
    return entry.get();  // waits for the in-flight compilation
  }
  misses.add();

  try {
    CITL_TRACE_SPAN("sweep.kernel_compile");
    std::string source;
    const char* name = "beam_sampled";
    switch (kind) {
      case KernelKind::kSampled:
        source = cgra::beam_kernel_source(config);
        break;
      case KernelKind::kAnalytic:
        source = cgra::analytic_beam_kernel_source(config);
        name = "beam_analytic";
        break;
      case KernelKind::kRamp:
        source = cgra::ramp_beam_kernel_source(config);
        name = "beam_ramp";
        break;
    }
    auto kernel = std::make_shared<const cgra::CompiledKernel>(
        cgra::compile_kernel(source, arch, name));
    compilations_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(kernel);
    return kernel;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard lock(mutex_);
    entries_.erase(key);  // allow a corrected config to retry later
    throw;
  }
}

std::shared_ptr<const cgra::CompiledKernel> KernelCache::peek(
    const std::string& key) const {
  Entry entry;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    entry = it->second;
  }
  // A present entry may still be an in-flight or failed compilation; peek
  // reports both as absent rather than blocking or throwing.
  if (entry.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return nullptr;
  }
  try {
    return entry.get();
  } catch (...) {
    return nullptr;
  }
}

std::size_t KernelCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void KernelCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

KernelCache& KernelCache::global() {
  static KernelCache cache;
  return cache;
}

}  // namespace citl::sweep
