// Shared CGRA kernel compilations for scenario sweeps.
//
// Compiling the beam kernel (parse -> lower -> list-schedule -> verify) costs
// around a millisecond — negligible for one framework, but a 100-scenario
// sweep that varies only controller settings would pay it 100 times and,
// worse, hold 100 identical schedules in memory. CompiledKernel is immutable
// after compilation and CgraMachine keeps all mutable execution state
// privately, so distinct machines can safely share one kernel. The cache
// hands out shared_ptr<const CompiledKernel> keyed by the full
// (BeamKernelConfig, CgraArch) pair and guarantees exactly one compilation
// per distinct key even under concurrent lookups.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cgra/kernels.hpp"
#include "cgra/schedule.hpp"

namespace citl::sweep {

/// Which kernel-source generator a cache entry holds. The sample-accurate
/// framework compiles the sampled kernel; turn-level scenarios may use the
/// CORDIC waveform-synthesis kernel or the ramp kernel instead, and those
/// compile to different programs from the same BeamKernelConfig.
enum class KernelKind : std::uint8_t { kSampled, kAnalytic, kRamp };

/// Canonical textual key covering every field of the kernel configuration
/// and the architecture that can influence the compilation result. Doubles
/// are rendered as hex floats, so configs differing in the last ulp get
/// distinct entries rather than silently sharing a kernel.
[[nodiscard]] std::string kernel_cache_key(const cgra::BeamKernelConfig& config,
                                           const cgra::CgraArch& arch,
                                           KernelKind kind = KernelKind::kSampled);

class KernelCache {
 public:
  /// Returns the compiled kernel for (config, arch), compiling it on the
  /// first request. Concurrent requests for the same key block until the
  /// single compilation finishes and then share its result. A compilation
  /// failure propagates to every waiter of that round and is not cached.
  [[nodiscard]] std::shared_ptr<const cgra::CompiledKernel> get(
      const cgra::BeamKernelConfig& config, const cgra::CgraArch& arch,
      KernelKind kind = KernelKind::kSampled);

  /// Already-compiled kernel for `key`, or nullptr when the key was never
  /// resolved (or its compilation failed). Does NOT count as a lookup and
  /// never compiles — the read-only accessor for post-run passes (e.g. the
  /// sweep's attribution section) that must not skew the hit/miss stats.
  [[nodiscard]] std::shared_ptr<const cgra::CompiledKernel> peek(
      const std::string& key) const;

  /// Number of compilations actually performed (== distinct keys resolved).
  [[nodiscard]] std::size_t compilations() const noexcept {
    return compilations_.load(std::memory_order_relaxed);
  }
  /// Number of get() calls served.
  [[nodiscard]] std::size_t lookups() const noexcept {
    return lookups_.load(std::memory_order_relaxed);
  }
  /// Distinct kernels currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drops every cached kernel (kernels still referenced by machines stay
  /// alive through their shared_ptr).
  void clear();

  /// Process-wide cache shared by sweeps that do not bring their own.
  static KernelCache& global();

 private:
  using Entry =
      std::shared_future<std::shared_ptr<const cgra::CompiledKernel>>;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::atomic<std::size_t> compilations_{0};
  std::atomic<std::size_t> lookups_{0};
};

}  // namespace citl::sweep
