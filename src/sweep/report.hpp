// Sweep result export: CSV (one row per scenario) and JSON (nested, with
// scenario names and sweep-level statistics), both via src/io.
//
// The deterministic metric fields are emitted with round-trip precision, so
// "two sweeps agree" can be tested as string equality of their reports; the
// measured timing columns are opt-in for exactly that reason.
#pragma once

#include <string>
#include <vector>

#include "io/csv.hpp"
#include "sweep/sweep.hpp"

namespace citl::sweep {

/// Columns of the per-scenario metrics table. `include_timing` appends the
/// measured wall-clock columns (non-deterministic by nature).
[[nodiscard]] std::vector<io::Column> metrics_columns(
    const SweepResult& result, bool include_timing = false);

/// CSV rendering of the metrics table.
[[nodiscard]] std::string metrics_csv(const SweepResult& result,
                                      bool include_timing = false);
void write_metrics_csv(const std::string& path, const SweepResult& result,
                       bool include_timing = false);

/// JSON rendering: scenario names, seeds, metrics, reference metrics and the
/// sweep-level cache/threading statistics.
[[nodiscard]] std::string metrics_json(const SweepResult& result,
                                       bool include_timing = false);
void write_metrics_json(const std::string& path, const SweepResult& result,
                        bool include_timing = false);

}  // namespace citl::sweep
