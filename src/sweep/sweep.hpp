// Batched scenario-sweep engine.
//
// The paper validates ONE operating point (14N7+, f_ref = 800 kHz, h = 4)
// against one machine development experiment. A simulator earns its keep by
// sweeping *many* operating points — controller gains, jump amplitudes,
// species, harmonics — and that only counts if every result is reproducible.
// This engine runs many independent hil::Framework instances (optionally
// with phys::EnsembleTracker ground truth) concurrently on a ThreadPool,
// one scenario per task, with three guarantees:
//
//   * distinct CGRA kernels are compiled exactly once per sweep and shared
//     immutably across scenarios (sweep::KernelCache),
//   * every scenario derives its RNG streams from (sweep seed, scenario
//     index) only, and writes into its own pre-sized result slot, so the
//     sweep output is bit-identical for any thread count or schedule,
//   * per-scenario wall time is measured but kept out of the deterministic
//     metric set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgra/attribution.hpp"
#include "core/parallel.hpp"
#include "hil/framework.hpp"
#include "hil/turnloop.hpp"
#include "oracle/oracle.hpp"
#include "sweep/kernel_cache.hpp"
#include "sweep/metrics.hpp"

namespace citl::sweep {

/// Which simulation engine executes a scenario.
enum class ScenarioEngine : std::uint8_t {
  kSampleAccurate,  ///< hil::Framework — every 250 MHz converter tick
  kTurnLevel,       ///< hil::TurnLoop — one step per revolution
};

/// One independent simulation to run: an engine configuration plus how long
/// to run it and how to window the metrics.
struct Scenario {
  std::string name;
  ScenarioEngine engine = ScenarioEngine::kSampleAccurate;
  /// Engine configuration; `framework` is read for kSampleAccurate,
  /// `turnloop` for kTurnLevel.
  hil::FrameworkConfig framework;
  hil::TurnLoopConfig turnloop;
  double duration_s = 20.0e-3;         ///< simulated experiment length
  double f_sync_nominal_hz = 1280.0;   ///< analytic f_s; sets metric windows
  /// Also run a serial many-particle EnsembleTracker under the same stimulus
  /// and controller settings as ground truth (costs ~n_particles per turn).
  bool ensemble_reference = false;
  std::size_t ensemble_particles = 2000;
  double ensemble_sigma_dt_s = 25.0e-9;
  /// Opt-in differential oracle (turn-level scenarios only): the scenario is
  /// re-run through the spec's reference/candidate fidelity pair and the
  /// metrics gain max_ulp_err / first_divergent_turn columns. Enabling it on
  /// a sample-accurate scenario is a ConfigError — the oracle's fidelities
  /// are all turn-granular.
  oracle::OracleSpec oracle;
};

struct ScenarioResult {
  std::string name;
  std::size_t index = 0;
  std::uint64_t seed = 0;              ///< derived per-scenario seed
  ScenarioMetrics metrics;
  /// Copy of the recorded phase trace (decimated at the framework's trace
  /// rate); empty when SweepConfig::collect_traces is false.
  std::vector<double> trace_time_s;
  std::vector<double> trace_phase_rad;
  // Ground-truth metrics (zero when the scenario ran without an ensemble).
  double f_sync_reference_hz = 0.0;
  double reference_first_swing_rad = 0.0;
};

struct SweepConfig {
  std::vector<Scenario> scenarios;
  /// Worker threads for the private pool when run_sweep creates one
  /// (0 = hardware_concurrency). Ignored when a pool is passed in.
  unsigned threads = 0;
  std::uint64_t seed = 2024;           ///< master seed of the sweep
  bool collect_traces = true;
  /// Kernel cache to use; nullptr = a cache private to this run_sweep call.
  KernelCache* cache = nullptr;
  /// Lane width for batched execution. Scenarios sharing one compiled kernel
  /// (and engine) are grouped into chunks of up to `batch_lanes` lanes, each
  /// chunk executed by one BatchedCgraMachine in lockstep; chunks are the
  /// unit of thread-pool work. 0 or 1 keeps the per-scenario path. Reports
  /// are byte-identical either way at any lane/thread count (a tested
  /// invariant).
  std::size_t batch_lanes = 0;
};

/// Cycle attribution for one distinct kernel of a sweep: the kernel's
/// static per-iteration profile scaled by the summed cgra_runs of the
/// scenarios that executed it. Derived from schedules and the deterministic
/// metric set only — present (and byte-identical) whether or not any
/// observability instrument is enabled.
struct KernelAttribution {
  cgra::KernelCycleProfile profile;
  std::uint64_t iterations = 0;            ///< summed member cgra_runs
  std::vector<std::size_t> scenario_indices;  ///< members, ascending
};

struct SweepResult {
  std::vector<ScenarioResult> scenarios;  ///< index-aligned with the config
  std::size_t kernel_compilations = 0;    ///< compiles performed by this sweep
  std::size_t distinct_kernels = 0;       ///< distinct keys among scenarios
  std::size_t batch_chunks = 0;           ///< lockstep chunks (0 = per-scenario)
  /// Per-distinct-kernel hotspot data, ordered by kernel cache key.
  std::vector<KernelAttribution> attribution;
  double wall_time_s = 0.0;
  unsigned threads_used = 0;
};

/// Per-scenario seed derivation (splitmix64 over master seed and index):
/// stable across versions so recorded sweeps stay replayable.
[[nodiscard]] std::uint64_t scenario_seed(std::uint64_t master,
                                          std::size_t index) noexcept;

/// Runs every scenario and extracts its metrics. Supplying `pool` reuses an
/// existing ThreadPool (the pool's thread count then decides concurrency);
/// otherwise a private pool with `config.threads` workers is created.
/// Scenario failures (e.g. an unschedulable kernel) propagate as exceptions
/// after the remaining scenarios finished.
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config,
                                    ThreadPool* pool = nullptr);

}  // namespace citl::sweep
