// Per-scenario figures of merit, extracted from a recorded phase trace.
//
// These are the quantities §V of the paper reads off Fig. 5 by eye — how
// fast the beam-phase loop damps a gap-phase jump, at what frequency the
// bunch oscillates, and how quiet the settled phase is — plus the simulator
// health counters (real-time misses, wall-clock cost) that a sweep uses to
// rank operating points.
#pragma once

#include <cstdint>
#include <span>

namespace citl::sweep {

/// Analysis windows for one scenario; all times are experiment time [s].
struct MetricWindows {
  double jump_s = 0.0;          ///< time of the phase jump (stimulus onset)
  double end_s = 0.0;           ///< end of the analysed record
  double f_sync_nominal_hz = 1280.0;  ///< sets the window widths
};

/// Deterministic metrics of one scenario run. Every field except the
/// wall-clock pair is a pure function of the scenario configuration and
/// seed; the sweep determinism tests compare them bit-for-bit.
struct ScenarioMetrics {
  double f_sync_measured_hz = 0.0;  ///< mean-crossing estimate after the jump
  double damping_tau_s = 0.0;       ///< envelope e-folding time; inf = undamped
  double first_swing_rad = 0.0;     ///< first peak-to-peak after the jump
  double steady_rms_rad = 0.0;      ///< phase RMS about the settled mean
  double settled_phase_rad = 0.0;   ///< mean phase in the late window
  std::int64_t realtime_violations = 0;
  std::int64_t cgra_runs = 0;
  double sim_time_s = 0.0;
  // -- real-time deadline accounting (obs::DeadlineProfiler, §IV-B) --
  // All simulation-derived and deterministic: schedule length in CGRA
  // cycles, and the headroom fraction (1 - schedule/budget) distribution
  // across revolutions. headroom_p99 is the headroom exceeded by 99% of
  // revolutions; worst_overrun_cycles is max(schedule - budget) over misses.
  std::int64_t schedule_cycles = 0;
  double deadline_headroom_min = 0.0;
  double deadline_headroom_p50 = 0.0;
  double deadline_headroom_p99 = 0.0;
  double worst_overrun_cycles = 0.0;
  // -- fault campaign accounting (src/fault/, hil::Supervisor) --
  // Deterministic like the rest: a fixed (plan, seed) replays bit-exactly
  // at any thread or lane count. All zeros (ratio 1.0) on a healthy run.
  std::int64_t faults_injected = 0;   ///< fault windows entered
  std::int64_t faults_detected = 0;   ///< supervisor healthy->faulted edges
  std::int64_t faults_recovered = 0;  ///< episodes closed by a clean turn
  double time_to_recovery_turns = 0.0;  ///< mean episode length [turns]
  double finite_output_ratio = 1.0;   ///< fraction of turns with finite state
  // -- cross-fidelity oracle (src/oracle/, opt-in via Scenario::oracle) --
  // Deterministic: the oracle re-runs the scenario (same derived seed)
  // through a reference/candidate fidelity pair. max_ulp_err is the largest
  // observed ULP distance (saturated at 2^53; 0 without an oracle or under
  // bit identity); first_divergent_turn is -1 while within budget.
  double max_ulp_err = 0.0;
  std::int64_t first_divergent_turn = -1;
  // -- timing (measured, deliberately excluded from determinism checks) --
  double wall_time_s = 0.0;
  double wall_over_sim = 0.0;       ///< < 1 means faster than real time
};

/// Fits the exponential envelope of the oscillation of `x` about its settled
/// value in [t_begin, t_end): the deviation is rectified, binned into
/// half-synchrotron-period buckets, and ln(max per bucket) is fitted by
/// least squares. Returns the e-folding time constant tau [s]; +inf when the
/// envelope does not decay, 0 when there is too little data to fit.
[[nodiscard]] double fit_damping_tau_s(std::span<const double> time_s,
                                       std::span<const double> x,
                                       double t_begin, double t_end,
                                       double f_sync_nominal_hz);

/// Extracts the trace-derived metric fields (frequency, damping, swing,
/// steady-state statistics) from a phase record. The counter and timing
/// fields are the caller's to fill.
[[nodiscard]] ScenarioMetrics extract_phase_metrics(
    std::span<const double> time_s, std::span<const double> phase_rad,
    const MetricWindows& windows);

}  // namespace citl::sweep
