#include "sweep/report.hpp"

#include "cgra/attribution.hpp"
#include "io/json.hpp"

namespace citl::sweep {

std::vector<io::Column> metrics_columns(const SweepResult& result,
                                        bool include_timing) {
  const std::size_t n = result.scenarios.size();
  auto column = [n](std::string name) {
    io::Column c{std::move(name), {}, {}};
    c.values.reserve(n);
    return c;
  };
  io::Column name{"name", {}, {}};
  name.labels.reserve(n);
  io::Column index = column("scenario");
  io::Column seed = column("seed");
  io::Column f_sync = column("f_sync_measured_hz");
  io::Column tau = column("damping_tau_s");
  io::Column swing = column("first_swing_rad");
  io::Column rms = column("steady_rms_rad");
  io::Column settled = column("settled_phase_rad");
  io::Column violations = column("realtime_violations");
  io::Column runs = column("cgra_runs");
  io::Column sim_time = column("sim_time_s");
  io::Column sched_cycles = column("schedule_cycles");
  io::Column hr_min = column("deadline_headroom_min");
  io::Column hr_p50 = column("deadline_headroom_p50");
  io::Column hr_p99 = column("deadline_headroom_p99");
  io::Column overrun = column("worst_overrun_cycles");
  io::Column f_ref = column("f_sync_reference_hz");
  io::Column f_inj = column("faults_injected");
  io::Column f_det = column("faults_detected");
  io::Column f_rec = column("faults_recovered");
  io::Column f_ttr = column("time_to_recovery_turns");
  io::Column f_fin = column("finite_output_ratio");
  io::Column ulp_err = column("max_ulp_err");
  io::Column div_turn = column("first_divergent_turn");
  io::Column wall = column("wall_time_s");
  io::Column ratio = column("wall_over_sim");

  for (const auto& s : result.scenarios) {
    name.labels.push_back(s.name);
    index.values.push_back(static_cast<double>(s.index));
    seed.values.push_back(static_cast<double>(s.seed));
    f_sync.values.push_back(s.metrics.f_sync_measured_hz);
    tau.values.push_back(s.metrics.damping_tau_s);
    swing.values.push_back(s.metrics.first_swing_rad);
    rms.values.push_back(s.metrics.steady_rms_rad);
    settled.values.push_back(s.metrics.settled_phase_rad);
    violations.values.push_back(
        static_cast<double>(s.metrics.realtime_violations));
    runs.values.push_back(static_cast<double>(s.metrics.cgra_runs));
    sim_time.values.push_back(s.metrics.sim_time_s);
    sched_cycles.values.push_back(
        static_cast<double>(s.metrics.schedule_cycles));
    hr_min.values.push_back(s.metrics.deadline_headroom_min);
    hr_p50.values.push_back(s.metrics.deadline_headroom_p50);
    hr_p99.values.push_back(s.metrics.deadline_headroom_p99);
    overrun.values.push_back(s.metrics.worst_overrun_cycles);
    f_ref.values.push_back(s.f_sync_reference_hz);
    f_inj.values.push_back(static_cast<double>(s.metrics.faults_injected));
    f_det.values.push_back(static_cast<double>(s.metrics.faults_detected));
    f_rec.values.push_back(static_cast<double>(s.metrics.faults_recovered));
    f_ttr.values.push_back(s.metrics.time_to_recovery_turns);
    f_fin.values.push_back(s.metrics.finite_output_ratio);
    ulp_err.values.push_back(s.metrics.max_ulp_err);
    div_turn.values.push_back(
        static_cast<double>(s.metrics.first_divergent_turn));
    wall.values.push_back(s.metrics.wall_time_s);
    ratio.values.push_back(s.metrics.wall_over_sim);
  }

  std::vector<io::Column> cols{
      std::move(name),         std::move(index),   std::move(seed),
      std::move(f_sync),       std::move(tau),     std::move(swing),
      std::move(rms),          std::move(settled), std::move(violations),
      std::move(runs),         std::move(sim_time),
      std::move(sched_cycles), std::move(hr_min),  std::move(hr_p50),
      std::move(hr_p99),       std::move(overrun), std::move(f_ref),
      std::move(f_inj),        std::move(f_det),   std::move(f_rec),
      std::move(f_ttr),        std::move(f_fin),  std::move(ulp_err),
      std::move(div_turn)};
  if (include_timing) {
    cols.push_back(std::move(wall));
    cols.push_back(std::move(ratio));
  }
  return cols;
}

std::string metrics_csv(const SweepResult& result, bool include_timing) {
  return io::csv_to_string(metrics_columns(result, include_timing));
}

void write_metrics_csv(const std::string& path, const SweepResult& result,
                       bool include_timing) {
  io::write_csv(path, metrics_columns(result, include_timing));
}

std::string metrics_json(const SweepResult& result, bool include_timing) {
  io::JsonWriter w;
  w.begin_object();
  w.key("scenario_count").value(static_cast<std::uint64_t>(
      result.scenarios.size()));
  w.key("distinct_kernels").value(static_cast<std::uint64_t>(
      result.distinct_kernels));
  w.key("kernel_compilations").value(static_cast<std::uint64_t>(
      result.kernel_compilations));
  if (include_timing) {
    w.key("threads_used").value(static_cast<std::uint64_t>(
        result.threads_used));
    w.key("wall_time_s").value(result.wall_time_s);
  }
  w.key("scenarios").begin_array();
  for (const auto& s : result.scenarios) {
    w.begin_object();
    w.key("name").value(std::string_view(s.name));
    w.key("index").value(static_cast<std::uint64_t>(s.index));
    w.key("seed").value(static_cast<std::uint64_t>(s.seed));
    w.key("metrics").begin_object();
    w.key("f_sync_measured_hz").value(s.metrics.f_sync_measured_hz);
    w.key("damping_tau_s").value(s.metrics.damping_tau_s);
    w.key("first_swing_rad").value(s.metrics.first_swing_rad);
    w.key("steady_rms_rad").value(s.metrics.steady_rms_rad);
    w.key("settled_phase_rad").value(s.metrics.settled_phase_rad);
    w.key("realtime_violations").value(s.metrics.realtime_violations);
    w.key("cgra_runs").value(s.metrics.cgra_runs);
    w.key("sim_time_s").value(s.metrics.sim_time_s);
    w.key("deadline").begin_object();
    w.key("schedule_cycles").value(s.metrics.schedule_cycles);
    w.key("headroom_min").value(s.metrics.deadline_headroom_min);
    w.key("headroom_p50").value(s.metrics.deadline_headroom_p50);
    w.key("headroom_p99").value(s.metrics.deadline_headroom_p99);
    w.key("worst_overrun_cycles").value(s.metrics.worst_overrun_cycles);
    w.end_object();
    w.key("faults").begin_object();
    w.key("injected").value(s.metrics.faults_injected);
    w.key("detected").value(s.metrics.faults_detected);
    w.key("recovered").value(s.metrics.faults_recovered);
    w.key("time_to_recovery_turns").value(s.metrics.time_to_recovery_turns);
    w.key("finite_output_ratio").value(s.metrics.finite_output_ratio);
    w.end_object();
    w.key("oracle").begin_object();
    w.key("max_ulp_err").value(s.metrics.max_ulp_err);
    w.key("first_divergent_turn").value(s.metrics.first_divergent_turn);
    w.end_object();
    if (include_timing) {
      w.key("wall_time_s").value(s.metrics.wall_time_s);
      w.key("wall_over_sim").value(s.metrics.wall_over_sim);
    }
    w.end_object();
    if (s.f_sync_reference_hz != 0.0 || s.reference_first_swing_rad != 0.0) {
      w.key("reference").begin_object();
      w.key("f_sync_hz").value(s.f_sync_reference_hz);
      w.key("first_swing_rad").value(s.reference_first_swing_rad);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  // Per-distinct-kernel cycle attribution (hotspot data for codegen and
  // scheduler work). Deterministic: schedules × cgra_runs, no obs state.
  w.key("attribution").begin_array();
  for (const auto& ka : result.attribution) {
    w.begin_object();
    w.key("scenarios").begin_array();
    for (const std::size_t idx : ka.scenario_indices) {
      w.value(static_cast<std::uint64_t>(idx));
    }
    w.end_array();
    w.key("profile");
    cgra::append_attribution_json(w, ka.profile, ka.iterations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_metrics_json(const std::string& path, const SweepResult& result,
                        bool include_timing) {
  io::write_text_file(path, metrics_json(result, include_timing));
}

}  // namespace citl::sweep
