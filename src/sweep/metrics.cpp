#include "sweep/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "hil/experiment.hpp"

namespace citl::sweep {

double fit_damping_tau_s(std::span<const double> time_s,
                         std::span<const double> x, double t_begin,
                         double t_end, double f_sync_nominal_hz) {
  CITL_CHECK(time_s.size() == x.size());
  if (!(f_sync_nominal_hz > 0.0) || !(t_end > t_begin)) return 0.0;

  // The oscillation decays towards its settled value, not towards zero —
  // use the mean of the last quarter of the window as the baseline.
  const double tail_begin = t_end - 0.25 * (t_end - t_begin);
  const double baseline =
      hil::mean_in_window(time_s, x, tail_begin, t_end);

  // Envelope samples: max |deviation| per half synchrotron period. A half
  // period always contains one extremum, so the bucket maxima trace the
  // envelope without needing peak detection.
  const double bucket_s = 0.5 / f_sync_nominal_hz;
  const auto n_buckets =
      static_cast<std::size_t>(std::floor((t_end - t_begin) / bucket_s));
  if (n_buckets < 3) return 0.0;
  std::vector<double> env(n_buckets, 0.0);
  std::vector<bool> seen(n_buckets, false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = time_s[i];
    if (t < t_begin || t >= t_end) continue;
    const auto b = static_cast<std::size_t>((t - t_begin) / bucket_s);
    if (b >= n_buckets) continue;
    env[b] = std::max(env[b], std::abs(x[i] - baseline));
    seen[b] = true;
  }

  // Least-squares fit of ln(env) vs bucket centre, over buckets above the
  // noise floor (5% of the initial envelope): once the oscillation has sunk
  // into the steady-state ripple, it no longer informs the decay rate.
  if (!seen[0] || env[0] <= 0.0) return 0.0;
  const double floor_level = 0.05 * env[0];
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t n = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (!seen[b] || env[b] <= floor_level) continue;
    const double t = t_begin + (static_cast<double>(b) + 0.5) * bucket_s;
    const double y = std::log(env[b]);
    sx += t;
    sy += y;
    sxx += t * t;
    sxy += t * y;
    ++n;
  }
  if (n < 3) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  if (slope >= 0.0) return std::numeric_limits<double>::infinity();
  return -1.0 / slope;
}

namespace {

/// Bin-averages (t, x) over [t_begin, t_end) into bins of width `bin_s`.
/// The phase trace carries revolution-rate detector ripple; averaging ~30
/// revolutions per bin suppresses it by >5x before the mean-crossing
/// frequency estimator runs, without touching the synchrotron-band signal.
void resample_mean(std::span<const double> time_s, std::span<const double> x,
                   double t_begin, double t_end, double bin_s,
                   std::vector<double>& out_t, std::vector<double>& out_x) {
  out_t.clear();
  out_x.clear();
  // A record shorter than the window start yields a negative span; guard it
  // before the float->size_t cast turns it into a huge allocation.
  if (!(t_end > t_begin) || !(bin_s > 0.0)) return;
  const auto n_bins =
      static_cast<std::size_t>(std::floor((t_end - t_begin) / bin_s));
  std::vector<double> sums(n_bins, 0.0);
  std::vector<std::size_t> counts(n_bins, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = time_s[i];
    if (t < t_begin || t >= t_end) continue;
    const auto b = static_cast<std::size_t>((t - t_begin) / bin_s);
    if (b >= n_bins) continue;
    sums[b] += x[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < n_bins; ++b) {
    if (counts[b] == 0) continue;
    out_t.push_back(t_begin + (static_cast<double>(b) + 0.5) * bin_s);
    out_x.push_back(sums[b] / static_cast<double>(counts[b]));
  }
}

}  // namespace

ScenarioMetrics extract_phase_metrics(std::span<const double> time_s,
                                      std::span<const double> phase_rad,
                                      const MetricWindows& windows) {
  CITL_CHECK(time_s.size() == phase_rad.size());
  ScenarioMetrics m;
  const double t_sync = 1.0 / windows.f_sync_nominal_hz;
  const double jump = windows.jump_s;
  const double end = windows.end_s;

  // Frequency while the oscillation is still strong. Three periods is the
  // sweet spot: long enough for several mean crossings, short enough that a
  // well-damped loop has not yet sunk into the steady-state ripple (whose
  // noise crossings would inflate the count). The trace is bin-averaged to
  // 24 bins per synchrotron period first so ADC-noise-induced phase ripple
  // cannot fake crossings.
  std::vector<double> ft, fx;
  resample_mean(time_s, phase_rad, jump + 0.2e-3,
                std::min(end, jump + 3.0 * t_sync) , t_sync / 24.0, ft, fx);
  m.f_sync_measured_hz = hil::estimate_oscillation_frequency_hz(
      ft, fx, ft.empty() ? 0.0 : ft.front(),
      ft.empty() ? 0.0 : ft.back() + t_sync);

  // First swing: within ~one synchrotron period after the jump.
  m.first_swing_rad =
      hil::peak_to_peak(time_s, phase_rad, jump, jump + 1.2 * t_sync);

  m.damping_tau_s =
      fit_damping_tau_s(time_s, phase_rad, jump, end,
                        windows.f_sync_nominal_hz);

  // Steady state: the last three synchrotron periods of the record.
  const double steady_begin = std::max(jump, end - 3.0 * t_sync);
  m.settled_phase_rad =
      hil::mean_in_window(time_s, phase_rad, steady_begin, end);
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < phase_rad.size(); ++i) {
    if (time_s[i] < steady_begin || time_s[i] >= end) continue;
    const double d = phase_rad[i] - m.settled_phase_rad;
    sum_sq += d * d;
    ++n;
  }
  m.steady_rms_rad = n > 0 ? std::sqrt(sum_sq / static_cast<double>(n)) : 0.0;
  return m;
}

}  // namespace citl::sweep
