#include "phys/synchrotron.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/units.hpp"
#include "phys/relativity.hpp"

namespace citl::phys {

WorkingPoint working_point(const Ion& ion, const Ring& ring, double gamma,
                           double rf_amplitude_v, double sync_phase_rad) {
  WorkingPoint wp;
  wp.gamma = gamma;
  wp.beta = beta_from_gamma(gamma);
  wp.eta = ring.phase_slip(gamma);
  wp.revolution_time_s = revolution_time_s(gamma, ring.circumference_m);
  wp.revolution_frequency_hz = 1.0 / wp.revolution_time_s;
  wp.rf_omega_rad_s = kTwoPi * ring.harmonic * wp.revolution_frequency_hz;
  wp.drift_per_dgamma_s =
      ring.circumference_m * wp.eta /
      (wp.beta * wp.beta * wp.beta * gamma * kSpeedOfLight);
  wp.kick_slope_per_s = ion.charge_over_mc2() * rf_amplitude_v *
                        wp.rf_omega_rad_s * std::cos(sync_phase_rad);
  return wp;
}

double synchrotron_frequency_hz(const Ion& ion, const Ring& ring, double gamma,
                                double rf_amplitude_v, double sync_phase_rad) {
  const WorkingPoint wp =
      working_point(ion, ring, gamma, rf_amplitude_v, sync_phase_rad);
  // Small oscillations of the discrete map have per-turn phase advance
  // mu = sqrt(-drift * kick_slope); stability requires the product < 0
  // (below transition eta < 0 and the kick slope is positive, as at SIS18).
  const double mu_sq = -wp.drift_per_dgamma_s * wp.kick_slope_per_s;
  if (mu_sq <= 0.0) {
    throw ConfigError(
        "longitudinally unstable working point: eta*cos(phi_s) has the "
        "wrong sign (check gamma vs gamma_transition)");
  }
  const double mu = std::sqrt(mu_sq);
  return mu * wp.revolution_frequency_hz / kTwoPi;
}

double synchrotron_tune(const Ion& ion, const Ring& ring, double gamma,
                        double rf_amplitude_v, double sync_phase_rad) {
  return synchrotron_frequency_hz(ion, ring, gamma, rf_amplitude_v,
                                  sync_phase_rad) *
         revolution_time_s(gamma, ring.circumference_m);
}

double amplitude_for_synchrotron_frequency(const Ion& ion, const Ring& ring,
                                           double gamma, double f_sync_hz) {
  // f_s scales with sqrt(V̂): invert analytically from a 1 V probe.
  const double f1 = synchrotron_frequency_hz(ion, ring, gamma, 1.0);
  const double r = f_sync_hz / f1;
  return r * r;
}

double separatrix_dgamma(const Ion& ion, const Ring& ring, double gamma,
                         double rf_amplitude_v, double dphi_rad) {
  const WorkingPoint wp = working_point(ion, ring, gamma, rf_amplitude_v);
  // Stationary-bucket Hamiltonian level through (Δφ = ±π, Δγ = 0):
  //   Δγ_sep(Δφ) = sqrt( 2·(Q·V̂/mc²) · (1 + cos Δφ) / (ω_RF·|drift|) ).
  const double qv = ion.charge_over_mc2() * rf_amplitude_v;
  const double denom = wp.rf_omega_rad_s * std::abs(wp.drift_per_dgamma_s);
  const double level = 2.0 * qv * (1.0 + std::cos(dphi_rad)) / denom;
  return level > 0.0 ? std::sqrt(level) : 0.0;
}

double bucket_half_height_dgamma(const Ion& ion, const Ring& ring,
                                 double gamma, double rf_amplitude_v) {
  return separatrix_dgamma(ion, ring, gamma, rf_amplitude_v, 0.0);
}

double bucket_action_fraction(const Ion& ion, const Ring& ring, double gamma,
                              double rf_amplitude_v, double dt_s,
                              double dgamma) {
  const WorkingPoint wp = working_point(ion, ring, gamma, rf_amplitude_v);
  const double half = bucket_half_height_dgamma(ion, ring, gamma,
                                                rf_amplitude_v);
  const double phi = wp.rf_omega_rad_s * dt_s;
  const double r = dgamma / half;
  return r * r + 0.5 * (1.0 - std::cos(phi));
}

double matched_dt_per_dgamma_s(const Ion& ion, const Ring& ring, double gamma,
                               double rf_amplitude_v) {
  const WorkingPoint wp = working_point(ion, ring, gamma, rf_amplitude_v);
  const double mu_sq = -wp.drift_per_dgamma_s * wp.kick_slope_per_s;
  CITL_CHECK_MSG(mu_sq > 0.0, "matched bunch requires a stable bucket");
  // On the matched ellipse Δt_amp/Δγ_amp = |drift| / mu.
  return std::abs(wp.drift_per_dgamma_s) / std::sqrt(mu_sq);
}

}  // namespace citl::phys
