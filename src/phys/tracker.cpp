#include "phys/tracker.hpp"

namespace citl::phys {

TwoParticleTracker::TwoParticleTracker(Ion ion, Ring ring,
                                       double initial_gamma_r)
    : ion_(std::move(ion)), ring_(ring) {
  CITL_CHECK_MSG(initial_gamma_r > 1.0, "reference particle must be moving");
  state_.gamma_r = initial_gamma_r;
}

void TwoParticleTracker::displace(double dgamma, double dt_s) {
  state_.dgamma = dgamma;
  state_.dt_s = dt_s;
}

double TwoParticleTracker::drift_per_dgamma_s() const {
  const double beta = beta_r();
  return ring_.circumference_m * eta() /
         (beta * beta * beta * state_.gamma_r * kSpeedOfLight);
}

void TwoParticleTracker::step(const GapVoltages& v) {
  const double q_over_mc2 = ion_.charge_over_mc2();

  // Energy kicks, eqs. (2) and (3). ΔV = V_async - V_reference.
  state_.gamma_r += q_over_mc2 * v.reference_v;
  state_.dgamma += q_over_mc2 * (v.async_v - v.reference_v);

  // Arrival-time drift, eq. (6), evaluated with the *updated* energies —
  // a kick-then-drift (symplectic leapfrog) update, which is what the
  // paper's recursion indices Δγ_n / γ_R,n / η_R,n prescribe.
  state_.dt_s += drift_per_dgamma_s() * state_.dgamma;
  ++state_.turn;
}

void TwoParticleTracker::step_with_waveform(
    const std::function<double(double)>& gap_voltage) {
  step(GapVoltages{gap_voltage(0.0), gap_voltage(state_.dt_s)});
}

}  // namespace citl::phys
