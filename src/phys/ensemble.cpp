#include "phys/ensemble.hpp"

#include <cmath>

#include "core/units.hpp"
#include "phys/relativity.hpp"
#include "phys/synchrotron.hpp"

namespace citl::phys {

EnsembleTracker::EnsembleTracker(EnsembleConfig config, ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool),
      rng_(config_.seed),
      gamma_r_(config_.initial_gamma_r) {
  CITL_CHECK_MSG(config_.n_particles > 0, "ensemble needs particles");
  dt_.assign(config_.n_particles, 0.0);
  dgamma_.assign(config_.n_particles, 0.0);
}

void EnsembleTracker::populate_matched(double sigma_dgamma,
                                       double rf_amplitude_v) {
  const double ratio = matched_dt_per_dgamma_s(config_.ion, config_.ring,
                                               gamma_r_, rf_amplitude_v);
  populate_gaussian(sigma_dgamma, sigma_dgamma * ratio);
}

void EnsembleTracker::populate_gaussian(double sigma_dgamma,
                                        double sigma_dt_s) {
  for (std::size_t i = 0; i < dt_.size(); ++i) {
    dgamma_[i] = rng_.gaussian(0.0, sigma_dgamma);
    dt_[i] = rng_.gaussian(0.0, sigma_dt_s);
  }
}

void EnsembleTracker::populate_gaussian_in_bucket(double sigma_dgamma,
                                                  double sigma_dt_s,
                                                  double rf_amplitude_v,
                                                  double max_action_fraction) {
  CITL_CHECK_MSG(max_action_fraction > 0.0 && max_action_fraction <= 1.0,
                 "action fraction must be in (0, 1]");
  for (std::size_t i = 0; i < dt_.size(); ++i) {
    double dg = 0.0, dt = 0.0;
    // Rejection sampling against the bucket; the acceptance region always
    // contains the origin, so this terminates quickly for sane sigmas.
    for (int tries = 0;; ++tries) {
      dg = rng_.gaussian(0.0, sigma_dgamma);
      dt = rng_.gaussian(0.0, sigma_dt_s);
      if (bucket_action_fraction(config_.ion, config_.ring, gamma_r_,
                                 rf_amplitude_v, dt, dg) <=
          max_action_fraction) {
        break;
      }
      CITL_CHECK_MSG(tries < 10'000,
                     "bunch far larger than the bucket: cannot populate");
    }
    dgamma_[i] = dg;
    dt_[i] = dt;
  }
}

void EnsembleTracker::displace(double dgamma_offset, double dt_offset_s) {
  for (std::size_t i = 0; i < dt_.size(); ++i) {
    dgamma_[i] += dgamma_offset;
    dt_[i] += dt_offset_s;
  }
}

void EnsembleTracker::step(const SineWaveform& gap, double reference_v) {
  const double q_over_mc2 = config_.ion.charge_over_mc2();
  // Reference energy first (eq. (2)), so the drift uses gamma_R,n.
  gamma_r_ += q_over_mc2 * reference_v;
  const double beta = beta_from_gamma(gamma_r_);
  const double drift = config_.ring.circumference_m *
                       config_.ring.phase_slip(gamma_r_) /
                       (beta * beta * beta * gamma_r_ * kSpeedOfLight);

  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      dgamma_[i] += q_over_mc2 * (gap(dt_[i]) - reference_v);
      dt_[i] += drift * dgamma_[i];
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for_chunks(0, dt_.size(), body);
  } else {
    body(0, dt_.size());
  }
  ++turn_;
}

void EnsembleTracker::step_with_waveform(
    const std::function<double(double)>& gap_voltage, double reference_v) {
  const double q_over_mc2 = config_.ion.charge_over_mc2();
  gamma_r_ += q_over_mc2 * reference_v;
  const double beta = beta_from_gamma(gamma_r_);
  const double drift = config_.ring.circumference_m *
                       config_.ring.phase_slip(gamma_r_) /
                       (beta * beta * beta * gamma_r_ * kSpeedOfLight);
  for (std::size_t i = 0; i < dt_.size(); ++i) {
    dgamma_[i] += q_over_mc2 * (gap_voltage(dt_[i]) - reference_v);
    dt_[i] += drift * dgamma_[i];
  }
  ++turn_;
}

void EnsembleTracker::run(const SineWaveform& gap, std::int64_t turns) {
  for (std::int64_t i = 0; i < turns; ++i) step(gap);
}

double EnsembleTracker::centroid_dt_s() const { return moments(dt_).mean; }
double EnsembleTracker::centroid_dgamma() const {
  return moments(dgamma_).mean;
}
double EnsembleTracker::rms_dt_s() const { return moments(dt_).rms; }
double EnsembleTracker::rms_dgamma() const { return moments(dgamma_).rms; }

}  // namespace citl::phys
