// Longitudinal phase-space diagnostics: moments, rms emittance, and binned
// bunch profiles (the quantity a pickup actually sees).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace citl::phys {

/// First and second moments of a particle coordinate sample.
struct Moments {
  double mean = 0.0;
  double rms = 0.0;  ///< standard deviation about the mean
};

[[nodiscard]] inline Moments moments(std::span<const double> xs) {
  CITL_CHECK_MSG(!xs.empty(), "moments of an empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    var += d * d;
  }
  var /= static_cast<double>(xs.size());
  return Moments{mean, std::sqrt(var)};
}

/// RMS longitudinal emittance of (Δt, Δγ) samples:
///   ε = sqrt( <Δt²><Δγ²> − <Δt·Δγ>² )   (centred moments).
[[nodiscard]] inline double rms_emittance(std::span<const double> dt,
                                          std::span<const double> dgamma) {
  CITL_CHECK(dt.size() == dgamma.size());
  CITL_CHECK(!dt.empty());
  const double n = static_cast<double>(dt.size());
  double mt = 0.0, mg = 0.0;
  for (std::size_t i = 0; i < dt.size(); ++i) {
    mt += dt[i];
    mg += dgamma[i];
  }
  mt /= n;
  mg /= n;
  double stt = 0.0, sgg = 0.0, stg = 0.0;
  for (std::size_t i = 0; i < dt.size(); ++i) {
    const double a = dt[i] - mt;
    const double b = dgamma[i] - mg;
    stt += a * a;
    sgg += b * b;
    stg += a * b;
  }
  stt /= n;
  sgg /= n;
  stg /= n;
  const double det = stt * sgg - stg * stg;
  return det > 0.0 ? std::sqrt(det) : 0.0;
}

/// A binned longitudinal bunch profile over a Δt window.
struct Profile {
  double t_min_s;
  double t_max_s;
  std::vector<double> counts;  ///< per-bin particle counts

  [[nodiscard]] double bin_width_s() const {
    return (t_max_s - t_min_s) / static_cast<double>(counts.size());
  }
  [[nodiscard]] double bin_center_s(std::size_t i) const {
    return t_min_s + (static_cast<double>(i) + 0.5) * bin_width_s();
  }
};

/// Histograms the arrival times into `bins` bins over [t_min, t_max];
/// out-of-window particles are dropped (as they would fall outside the
/// pickup gate).
[[nodiscard]] inline Profile bunch_profile(std::span<const double> dt,
                                           double t_min_s, double t_max_s,
                                           std::size_t bins) {
  CITL_CHECK(bins > 0 && t_max_s > t_min_s);
  Profile p{t_min_s, t_max_s, std::vector<double>(bins, 0.0)};
  const double inv_w = static_cast<double>(bins) / (t_max_s - t_min_s);
  for (double t : dt) {
    if (t < t_min_s || t >= t_max_s) continue;
    const auto b = static_cast<std::size_t>((t - t_min_s) * inv_w);
    p.counts[b < bins ? b : bins - 1] += 1.0;
  }
  return p;
}

/// Gaussian fit of a profile by moments (mean / sigma of the histogram).
struct GaussianFit {
  double mean_s;
  double sigma_s;
  double amplitude;  ///< peak count of the fitted Gaussian
};

[[nodiscard]] inline GaussianFit fit_gaussian(const Profile& p) {
  double total = 0.0, m1 = 0.0;
  for (std::size_t i = 0; i < p.counts.size(); ++i) {
    total += p.counts[i];
    m1 += p.counts[i] * p.bin_center_s(i);
  }
  CITL_CHECK_MSG(total > 0.0, "cannot fit an empty profile");
  const double mean = m1 / total;
  double m2 = 0.0;
  for (std::size_t i = 0; i < p.counts.size(); ++i) {
    const double d = p.bin_center_s(i) - mean;
    m2 += p.counts[i] * d * d;
  }
  const double sigma = std::sqrt(m2 / total);
  const double amp =
      sigma > 0.0 ? total * p.bin_width_s() / (sigma * std::sqrt(2.0 * 3.141592653589793))
                  : total;
  return GaussianFit{mean, sigma, amp};
}

}  // namespace citl::phys
