// The paper's longitudinal tracking model (§IV-A): one reference particle
// plus one asynchronous macro particle, advanced revolution by revolution
// with the recursions (2), (3), (5), (6).
//
// The tracker is a pure map: each step consumes the gap voltage experienced
// by the reference particle and by the asynchronous particle and updates
// (gamma_R, dgamma, dt). Where those voltages come from — an analytic sine,
// the ring-buffer samples of the HIL framework, or the CGRA — is the
// caller's business, which is exactly how the hardware is layered.
#pragma once

#include <cstdint>
#include <functional>

#include "phys/ion.hpp"
#include "phys/machine.hpp"
#include "phys/relativity.hpp"

namespace citl::phys {

/// Phase-space state of the two-particle model after `turn` revolutions.
struct TwoParticleState {
  double gamma_r = 1.0;  ///< Lorentz factor of the reference particle
  double dgamma = 0.0;   ///< Δγ of the asynchronous particle (eq. (3))
  double dt_s = 0.0;     ///< Δt arrival-time offset at the gap [s] (eq. (6))
  std::int64_t turn = 0;
};

/// Voltage pair consumed by one tracking step.
struct GapVoltages {
  double reference_v;  ///< V_R,n-1: voltage at the reference arrival time
  double async_v;      ///< V_n-1:   voltage at the asynchronous arrival time
};

/// Two-particle longitudinal tracker.
class TwoParticleTracker {
 public:
  /// Starts the reference particle at `initial_gamma_r`; the asynchronous
  /// particle starts on top of it (Δγ = Δt = 0), matching the paper's
  /// initialisation (§IV-B: oscillations are excited via the inputs, not
  /// via hard-coded offsets).
  TwoParticleTracker(Ion ion, Ring ring, double initial_gamma_r);

  /// Sets the asynchronous particle's offsets (used by tests and by
  /// experiments that start from a displaced bunch).
  void displace(double dgamma, double dt_s);

  /// Advances one revolution with the given gap voltages (eqs. (2),(3),(6)).
  void step(const GapVoltages& v);

  /// Convenience: samples `gap_voltage(t_rel)` — the gap waveform as a
  /// function of time relative to the reference particle's arrival — at 0 and
  /// at the current Δt, then steps. This mirrors the ring-buffer lookups the
  /// CGRA performs.
  void step_with_waveform(const std::function<double(double)>& gap_voltage);

  [[nodiscard]] const TwoParticleState& state() const noexcept {
    return state_;
  }
  [[nodiscard]] double gamma_r() const noexcept { return state_.gamma_r; }
  [[nodiscard]] double gamma_async() const noexcept {
    return state_.gamma_r + state_.dgamma;
  }
  [[nodiscard]] double dgamma() const noexcept { return state_.dgamma; }
  [[nodiscard]] double dt_s() const noexcept { return state_.dt_s; }
  [[nodiscard]] std::int64_t turn() const noexcept { return state_.turn; }

  [[nodiscard]] double beta_r() const { return beta_from_gamma(state_.gamma_r); }
  [[nodiscard]] double eta() const { return ring_.phase_slip(state_.gamma_r); }
  /// Current revolution time of the reference particle [s].
  [[nodiscard]] double revolution_time_s() const {
    return phys::revolution_time_s(state_.gamma_r, ring_.circumference_m);
  }
  /// Per-turn drift coefficient d in Δt += d·Δγ (eq. (6)):
  /// d = l_R·η_R / (β_R³·γ_R·c).
  [[nodiscard]] double drift_per_dgamma_s() const;

  [[nodiscard]] const Ion& ion() const noexcept { return ion_; }
  [[nodiscard]] const Ring& ring() const noexcept { return ring_; }

 private:
  Ion ion_;
  Ring ring_;
  TwoParticleState state_;
};

}  // namespace citl::phys
