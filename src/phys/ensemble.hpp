// Many-macro-particle longitudinal tracker.
//
// The paper's HIL simulator uses a single macro particle and explicitly
// lists the N-particle model as future work (§VI) — it is what the *real*
// beam does, including Landau damping and filamentation of coherent dipole
// oscillations (§V discussion). We implement it as the ground-truth
// reference against which the 1-particle HIL loop is compared in the Fig. 5
// reproduction, and as the substrate for the quadrupole-mode extension.
//
// Every particle follows the same kick–drift map as TwoParticleTracker;
// the per-turn work is embarrassingly parallel over particles.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "core/random.hpp"
#include "phys/ion.hpp"
#include "phys/machine.hpp"
#include "phys/phasespace.hpp"

namespace citl::phys {

/// A sinusoidal gap waveform V(Δt) = amp·sin(ω·Δt + phase) — the shape the
/// gap DDS produces, with `phase` carrying controller corrections and jumps.
struct SineWaveform {
  double amplitude_v = 0.0;
  double omega_rad_s = 0.0;
  double phase_rad = 0.0;

  [[nodiscard]] double operator()(double dt_s) const noexcept {
    return amplitude_v * std::sin(omega_rad_s * dt_s + phase_rad);
  }
};

/// Configuration of an ensemble.
struct EnsembleConfig {
  Ion ion;
  Ring ring;
  double initial_gamma_r = 1.2;
  std::size_t n_particles = 10'000;
  std::uint64_t seed = 42;
};

class EnsembleTracker {
 public:
  EnsembleTracker(EnsembleConfig config, ThreadPool* pool = nullptr);

  /// Populates a bipartite-Gaussian matched bunch: Δγ ~ N(0, sigma_dgamma),
  /// Δt ~ N(0, sigma_dgamma · matched ratio), uncorrelated.
  void populate_matched(double sigma_dgamma, double rf_amplitude_v);

  /// Populates a Gaussian bunch with explicit widths (not necessarily
  /// matched — a mismatched bunch filaments, which some tests exercise).
  void populate_gaussian(double sigma_dgamma, double sigma_dt_s);

  /// Like populate_gaussian, but rejects draws outside `max_action_fraction`
  /// of the stationary bucket (normalised Hamiltonian), the standard
  /// injected-distribution truncation of offline tracking codes — without it
  /// Gaussian tails start outside the separatrix and drift away unbounded.
  void populate_gaussian_in_bucket(double sigma_dgamma, double sigma_dt_s,
                                   double rf_amplitude_v,
                                   double max_action_fraction = 0.95);

  /// Rigid displacement of the whole bunch (dipole-mode excitation).
  void displace(double dgamma_offset, double dt_offset_s);

  /// One revolution under a sinusoidal gap voltage. `reference_v` is the
  /// voltage the reference particle sees (0 in the stationary case).
  void step(const SineWaveform& gap, double reference_v = 0.0);

  /// One revolution under an arbitrary waveform (slower; used in tests).
  void step_with_waveform(const std::function<double(double)>& gap_voltage,
                          double reference_v = 0.0);

  /// Runs `turns` revolutions under a fixed waveform.
  void run(const SineWaveform& gap, std::int64_t turns);

  // --- diagnostics ------------------------------------------------------
  [[nodiscard]] std::span<const double> dt() const noexcept { return dt_; }
  [[nodiscard]] std::span<const double> dgamma() const noexcept {
    return dgamma_;
  }
  [[nodiscard]] double centroid_dt_s() const;
  [[nodiscard]] double centroid_dgamma() const;
  [[nodiscard]] double rms_dt_s() const;
  [[nodiscard]] double rms_dgamma() const;
  [[nodiscard]] double emittance() const {
    return rms_emittance(dt_, dgamma_);
  }
  [[nodiscard]] Profile profile(double t_min_s, double t_max_s,
                                std::size_t bins) const {
    return bunch_profile(dt_, t_min_s, t_max_s, bins);
  }

  [[nodiscard]] double gamma_r() const noexcept { return gamma_r_; }
  [[nodiscard]] std::int64_t turn() const noexcept { return turn_; }
  [[nodiscard]] std::size_t size() const noexcept { return dt_.size(); }
  [[nodiscard]] const Ring& ring() const noexcept { return config_.ring; }
  [[nodiscard]] const Ion& ion() const noexcept { return config_.ion; }

 private:
  EnsembleConfig config_;
  ThreadPool* pool_;
  Rng rng_;
  double gamma_r_;
  std::int64_t turn_ = 0;
  std::vector<double> dt_;
  std::vector<double> dgamma_;
};

}  // namespace citl::phys
