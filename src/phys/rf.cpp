#include "phys/rf.hpp"

#include <algorithm>
#include <cmath>

namespace citl::phys {

void Ramp::add_point(double time_s, double value) {
  CITL_CHECK_MSG(points_.empty() || time_s >= points_.back().time_s,
                 "ramp breakpoints must be time-ordered");
  points_.push_back({time_s, value});
}

double Ramp::at(double time_s) const {
  CITL_CHECK_MSG(!points_.empty(), "ramp has no breakpoints");
  if (time_s <= points_.front().time_s) return points_.front().value;
  if (time_s >= points_.back().time_s) return points_.back().value;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), time_s,
      [](double t, const Point& p) { return t < p.time_s; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.time_s - lo.time_s;
  if (span <= 0.0) return hi.value;
  const double f = (time_s - lo.time_s) / span;
  return lo.value + f * (hi.value - lo.value);
}

RfProgramme RfProgramme::stationary(double amplitude_v) {
  return RfProgramme(Ramp(amplitude_v), Ramp(0.0));
}

RfProgramme RfProgramme::linear_ramp(double amp0_v, double amp1_v,
                                     double phi_s_rad, double ramp_s) {
  Ramp amp;
  amp.add_point(0.0, amp0_v);
  amp.add_point(ramp_s, amp1_v);
  Ramp phi;
  phi.add_point(0.0, 0.0);
  phi.add_point(ramp_s, phi_s_rad);
  return RfProgramme(std::move(amp), std::move(phi));
}

double RfProgramme::reference_voltage_v(double time_s) const {
  return amplitude_.at(time_s) * std::sin(sync_phase_.at(time_s));
}

}  // namespace citl::phys
