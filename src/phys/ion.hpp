// Ion species description and the species used at GSI.
#pragma once

#include <string>

#include "core/units.hpp"

namespace citl::phys {

/// A fully-stripped-or-not ion species circulating in the ring.
struct Ion {
  std::string name;     ///< e.g. "14N7+"
  double mass_ev;       ///< rest energy m*c^2 [eV]
  int charge_number;    ///< Q in units of the elementary charge

  /// Charge-to-rest-energy ratio Q/(m c^2) [1/V] — the factor in eqs (2),(3).
  [[nodiscard]] double charge_over_mc2() const noexcept {
    return static_cast<double>(charge_number) / mass_ev;
  }
};

/// Builds an ion from mass number expressed in atomic mass units, correcting
/// for the removed electrons (binding energy neglected, ~keV level).
[[nodiscard]] inline Ion make_ion(std::string name, double atomic_mass_u,
                                  int charge_number) {
  const double mass_ev = atomic_mass_u * kAtomicMassUnitEv -
                         static_cast<double>(charge_number) * kElectronMassEv;
  return Ion{std::move(name), mass_ev, charge_number};
}

/// ¹⁴N⁷⁺ — the species accelerated in the paper's reference MDE (Fig. 5).
[[nodiscard]] inline Ion ion_n14_7plus() {
  return make_ion("14N7+", 14.0030740048, 7);
}

/// U²⁸⁺ — a typical heavy SIS18 beam, used in parameter sweeps.
[[nodiscard]] inline Ion ion_u238_28plus() {
  return make_ion("238U28+", 238.0507884, 28);
}

/// Ar¹⁸⁺ — mid-mass fully stripped species for sweeps.
[[nodiscard]] inline Ion ion_ar40_18plus() {
  return make_ion("40Ar18+", 39.9623831237, 18);
}

/// Bare proton.
[[nodiscard]] inline Ion ion_proton() {
  return Ion{"p", kProtonMassEv, 1};
}

}  // namespace citl::phys
