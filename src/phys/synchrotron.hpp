// Analytic longitudinal-dynamics results used to configure experiments and
// to validate the trackers: small-amplitude synchrotron frequency, bucket
// geometry (separatrix), and matched-bunch parameters.
//
// All formulas are for a single-harmonic sinusoidal gap voltage
//   V(Δt) = V̂ · sin(ω_RF·Δt + φ_s)
// with ω_RF = 2π·h·f_R, in the convention of the paper (Δt > 0 = late).
#pragma once

#include "phys/ion.hpp"
#include "phys/machine.hpp"

namespace citl::phys {

/// Bundle of per-turn map coefficients at a given working point.
///
/// The linearised two-particle map per revolution is
///   Δγ' = Δγ + kick_slope_per_s · Δt
///   Δt' = Δt + drift_per_dgamma_s · Δγ'
/// with kick_slope_per_s = (Q/mc²)·V̂·ω_RF·cos(φ_s) and
/// drift_per_dgamma_s = l_R·η/(β³γc).
struct WorkingPoint {
  double gamma;
  double beta;
  double eta;
  double revolution_time_s;
  double revolution_frequency_hz;
  double rf_omega_rad_s;          ///< ω_RF = 2π·h·f_R
  double drift_per_dgamma_s;
  double kick_slope_per_s;
};

/// Computes the working point for a ring/ion at Lorentz factor gamma with
/// gap amplitude `rf_amplitude_v` and synchronous phase `sync_phase_rad`.
[[nodiscard]] WorkingPoint working_point(const Ion& ion, const Ring& ring,
                                         double gamma, double rf_amplitude_v,
                                         double sync_phase_rad = 0.0);

/// Small-amplitude synchrotron frequency [Hz]:
///   f_s = f_R · sqrt( h·|η|·Q·V̂·cos(φ_s) / (2π·β²·γ·mc²) ).
/// Throws ConfigError if the working point is longitudinally unstable
/// (η·cos(φ_s) has the wrong sign).
[[nodiscard]] double synchrotron_frequency_hz(const Ion& ion, const Ring& ring,
                                              double gamma,
                                              double rf_amplitude_v,
                                              double sync_phase_rad = 0.0);

/// Synchrotron tune Q_s = f_s / f_R.
[[nodiscard]] double synchrotron_tune(const Ion& ion, const Ring& ring,
                                      double gamma, double rf_amplitude_v,
                                      double sync_phase_rad = 0.0);

/// Gap amplitude that yields a requested small-amplitude synchrotron
/// frequency — the paper adjusts V̂ to hit f_s = 1.28 kHz (§V).
[[nodiscard]] double amplitude_for_synchrotron_frequency(
    const Ion& ion, const Ring& ring, double gamma, double f_sync_hz);

/// Stationary-bucket separatrix: maximum stable |Δγ| at RF phase offset
/// `dphi_rad` ∈ [-π, π]. The bucket half-height is separatrix_dgamma(0).
[[nodiscard]] double separatrix_dgamma(const Ion& ion, const Ring& ring,
                                       double gamma, double rf_amplitude_v,
                                       double dphi_rad);

/// Bucket half-height in Δγ (separatrix at Δφ = 0).
[[nodiscard]] double bucket_half_height_dgamma(const Ion& ion,
                                               const Ring& ring, double gamma,
                                               double rf_amplitude_v);

/// Normalised stationary-bucket Hamiltonian: 0 at the bucket centre, 1 on
/// the separatrix, > 1 for untrapped particles. Computed as
///   (Δγ/Δγ_max)² + (1 − cos(ω_RF·Δt)) / 2.
[[nodiscard]] double bucket_action_fraction(const Ion& ion, const Ring& ring,
                                            double gamma,
                                            double rf_amplitude_v,
                                            double dt_s, double dgamma);

/// For a matched (upright-ellipse) small-amplitude bunch, the ratio
/// σ_Δt / σ_Δγ = drift / (2π·Q_s) — used to populate matched ensembles.
[[nodiscard]] double matched_dt_per_dgamma_s(const Ion& ion, const Ring& ring,
                                             double gamma,
                                             double rf_amplitude_v);

}  // namespace citl::phys
