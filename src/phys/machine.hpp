// Synchrotron ring description.
#pragma once

#include <cmath>

#include "core/error.hpp"

namespace citl::phys {

/// Static (ion-optics) properties of a synchrotron ring.
struct Ring {
  double circumference_m;    ///< l_R, reference orbit length [m]
  double alpha_c;            ///< momentum compaction factor (eq. (4))
  int harmonic;              ///< harmonic number h: f_RF = h * f_R

  /// Transition gamma: eta crosses zero at gamma == gamma_t.
  [[nodiscard]] double gamma_transition() const {
    CITL_CHECK_MSG(alpha_c > 0.0, "alpha_c must be positive");
    return 1.0 / std::sqrt(alpha_c);
  }

  /// Phase slip factor eta_R = alpha_c - 1/gamma^2 (eq. (5)).
  [[nodiscard]] double phase_slip(double gamma) const noexcept {
    return alpha_c - 1.0 / (gamma * gamma);
  }
};

/// The GSI heavy-ion synchrotron SIS18 (circumference 216.72 m,
/// gamma_t ≈ 5.45), with the harmonic number h = 4 used in the paper's
/// evaluation (§V: four bunches, f_gap = 4 * f_ref).
[[nodiscard]] inline Ring sis18(int harmonic = 4) {
  constexpr double kGammaT = 5.45;
  return Ring{216.72, 1.0 / (kGammaT * kGammaT), harmonic};
}

}  // namespace citl::phys
