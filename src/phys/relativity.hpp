// Special-relativistic kinematics helpers (paper §IV-A, eq. (1)).
//
// Throughout the library a particle's energy state is carried as the Lorentz
// factor gamma; everything else (beta, momentum, revolution time) is derived.
#pragma once

#include <cmath>

#include "core/error.hpp"
#include "core/units.hpp"

namespace citl::phys {

/// beta = v/c from gamma. Requires gamma >= 1.
[[nodiscard]] inline double beta_from_gamma(double gamma) {
  CITL_CHECK_MSG(gamma >= 1.0, "gamma below 1 is unphysical");
  return std::sqrt(1.0 - 1.0 / (gamma * gamma));
}

/// gamma from beta = v/c. Requires 0 <= beta < 1.
[[nodiscard]] inline double gamma_from_beta(double beta) {
  CITL_CHECK_MSG(beta >= 0.0 && beta < 1.0, "beta outside [0,1)");
  return 1.0 / std::sqrt(1.0 - beta * beta);
}

/// Momentum in eV/c for a particle of rest energy mc2_ev [eV].
[[nodiscard]] inline double momentum_ev(double gamma, double mc2_ev) {
  return beta_from_gamma(gamma) * gamma * mc2_ev;
}

/// gamma from momentum [eV/c] and rest energy [eV].
[[nodiscard]] inline double gamma_from_momentum(double p_ev, double mc2_ev) {
  const double r = p_ev / mc2_ev;
  return std::sqrt(1.0 + r * r);
}

/// Kinetic energy [eV].
[[nodiscard]] inline double kinetic_energy_ev(double gamma, double mc2_ev) {
  return (gamma - 1.0) * mc2_ev;
}

/// Total energy [eV].
[[nodiscard]] inline double total_energy_ev(double gamma, double mc2_ev) {
  return gamma * mc2_ev;
}

/// Revolution time [s] on an orbit of length l [m] at Lorentz factor gamma.
[[nodiscard]] inline double revolution_time_s(double gamma, double orbit_m) {
  return orbit_m / (beta_from_gamma(gamma) * kSpeedOfLight);
}

/// Revolution frequency [Hz] on an orbit of length l [m].
[[nodiscard]] inline double revolution_frequency_hz(double gamma,
                                                    double orbit_m) {
  return beta_from_gamma(gamma) * kSpeedOfLight / orbit_m;
}

/// gamma for a given revolution frequency on a given orbit.
[[nodiscard]] inline double gamma_from_revolution_frequency(double f_hz,
                                                            double orbit_m) {
  return gamma_from_beta(f_hz * orbit_m / kSpeedOfLight);
}

/// Relative momentum deviation dp/p for a relative gamma deviation dg/g:
/// dp/p = (1/beta^2) * dgamma/gamma (exact to first order).
[[nodiscard]] inline double dp_over_p(double dgamma_over_gamma, double beta) {
  return dgamma_over_gamma / (beta * beta);
}

}  // namespace citl::phys
