// Multi-harmonic gap voltages.
//
// SIS18 operates a dual-harmonic cavity system (the beam-phase control paper
// the authors build on — Grieser et al. 2014, ref. [9] — is specifically
// about it): a second cavity at a multiple of the RF frequency reshapes the
// bucket. In bunch-lengthening mode (second harmonic in counterphase) the
// effective focusing at the bunch centre weakens, the bucket flattens and
// the bunch gets longer — more Landau damping, lower peak current.
#pragma once

#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "phys/ion.hpp"
#include "phys/machine.hpp"
#include "phys/synchrotron.hpp"

namespace citl::phys {

struct HarmonicComponent {
  int multiple = 1;        ///< frequency multiple of the base RF
  double amplitude_v = 0;  ///< cavity amplitude [V]
  double phase_rad = 0;    ///< phase relative to the base RF
};

/// V(Δt) = Σ_k A_k · sin(k·ω·Δt + φ_k), with ω the base RF angular
/// frequency. A single-entry sum reproduces SineWaveform.
class MultiHarmonicWaveform {
 public:
  MultiHarmonicWaveform(double base_omega_rad_s,
                        std::vector<HarmonicComponent> components)
      : omega_(base_omega_rad_s), components_(std::move(components)) {
    CITL_CHECK_MSG(!components_.empty(), "waveform needs components");
    for (const auto& c : components_) {
      CITL_CHECK_MSG(c.multiple >= 1, "harmonic multiple must be >= 1");
    }
  }

  [[nodiscard]] double operator()(double dt_s) const noexcept {
    double v = 0.0;
    for (const auto& c : components_) {
      v += c.amplitude_v *
           std::sin(c.multiple * omega_ * dt_s + c.phase_rad);
    }
    return v;
  }

  /// dV/dΔt at offset dt — the focusing gradient.
  [[nodiscard]] double slope_at(double dt_s) const noexcept {
    double s = 0.0;
    for (const auto& c : components_) {
      s += c.amplitude_v * c.multiple * omega_ *
           std::cos(c.multiple * omega_ * dt_s + c.phase_rad);
    }
    return s;
  }

  [[nodiscard]] double base_omega_rad_s() const noexcept { return omega_; }
  [[nodiscard]] const std::vector<HarmonicComponent>& components() const {
    return components_;
  }

  /// Dual-harmonic factory: fundamental amplitude `v1`, second cavity at
  /// `multiple`·f with amplitude `ratio`·v1 and relative phase `phase2`.
  /// phase2 = π is the SIS18 bunch-lengthening (BLF) configuration.
  [[nodiscard]] static MultiHarmonicWaveform dual(double base_omega_rad_s,
                                                  double v1, double ratio,
                                                  double phase2 = kPi,
                                                  int multiple = 2) {
    return MultiHarmonicWaveform(
        base_omega_rad_s,
        {HarmonicComponent{1, v1, 0.0},
         HarmonicComponent{multiple, v1 * ratio, phase2}});
  }

 private:
  double omega_;
  std::vector<HarmonicComponent> components_;
};

/// Small-amplitude synchrotron frequency under an arbitrary waveform:
/// replaces V̂·ω·cos(φ_s) in the standard formula by the actual slope at the
/// stable point. Throws ConfigError when the point is defocusing.
[[nodiscard]] inline double synchrotron_frequency_hz(
    const Ion& ion, const Ring& ring, double gamma,
    const MultiHarmonicWaveform& wave, double dt_stable_s = 0.0) {
  const WorkingPoint wp = working_point(ion, ring, gamma, 1.0);
  const double kick_slope = ion.charge_over_mc2() * wave.slope_at(dt_stable_s);
  const double mu_sq = -wp.drift_per_dgamma_s * kick_slope;
  if (mu_sq <= 0.0) {
    throw ConfigError("defocusing RF slope at the requested point");
  }
  return std::sqrt(mu_sq) * wp.revolution_frequency_hz / kTwoPi;
}

}  // namespace citl::phys
