// RF programme: how gap-voltage amplitude and synchronous phase evolve over
// a machine cycle. The paper's evaluation uses the stationary case (constant
// energy, synchronous phase 0); the ramp-up case it announces as ongoing work
// (§VI) is modelled with piecewise-linear amplitude/phase ramps.
#pragma once

#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace citl::phys {

/// A piecewise-linear function of time, defined by breakpoints. Evaluates to
/// the first value before the first breakpoint and to the last value after
/// the last one.
class Ramp {
 public:
  Ramp() = default;
  /// Constant ramp.
  explicit Ramp(double value) { points_.push_back({0.0, value}); }

  /// Appends a breakpoint; times must be non-decreasing.
  void add_point(double time_s, double value);

  [[nodiscard]] double at(double time_s) const;
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

 private:
  struct Point {
    double time_s;
    double value;
  };
  std::vector<Point> points_;
};

/// The RF programme of one machine cycle.
///
/// * amplitude_v(t):   gap-voltage amplitude V̂ [V]
/// * sync_phase_rad(t): synchronous phase φ_s; 0 for the stationary case
/// The per-turn energy gain of the reference particle (eq. (2)) is
/// Q * V̂(t) * sin(φ_s(t)).
class RfProgramme {
 public:
  RfProgramme(Ramp amplitude, Ramp sync_phase)
      : amplitude_(std::move(amplitude)), sync_phase_(std::move(sync_phase)) {}

  /// Stationary bucket: constant amplitude, φ_s = 0, no net acceleration.
  [[nodiscard]] static RfProgramme stationary(double amplitude_v);

  /// Linear acceleration ramp: amplitude raised from `amp0_v` to `amp1_v`
  /// and synchronous phase from 0 to `phi_s_rad` over [0, ramp_s], constant
  /// afterwards.
  [[nodiscard]] static RfProgramme linear_ramp(double amp0_v, double amp1_v,
                                               double phi_s_rad,
                                               double ramp_s);

  [[nodiscard]] double amplitude_v(double time_s) const {
    return amplitude_.at(time_s);
  }
  [[nodiscard]] double sync_phase_rad(double time_s) const {
    return sync_phase_.at(time_s);
  }
  /// Voltage seen by the reference particle at cycle time t (eq. (2) input).
  [[nodiscard]] double reference_voltage_v(double time_s) const;

 private:
  Ramp amplitude_;
  Ramp sync_phase_;
};

}  // namespace citl::phys
