#include "offline/longsim.hpp"

#include <chrono>

#include "core/units.hpp"
#include "io/csv.hpp"
#include "phys/relativity.hpp"
#include "phys/synchrotron.hpp"

namespace citl::offline {

namespace {

phys::EnsembleConfig make_ensemble_config(const LongSimConfig& cfg) {
  phys::EnsembleConfig ec;
  ec.ion = cfg.ion;
  ec.ring = cfg.ring;
  ec.initial_gamma_r = phys::gamma_from_revolution_frequency(
      cfg.f_rev0_hz, cfg.ring.circumference_m);
  ec.n_particles = cfg.n_particles;
  ec.seed = cfg.seed;
  return ec;
}

}  // namespace

LongSim::LongSim(LongSimConfig config, ThreadPool* pool)
    : config_(std::move(config)),
      ensemble_(make_ensemble_config(config_), pool) {
  // Inject a bunch matched to the *initial* RF settings (fundamental only —
  // a BLF bunch then visibly relaxes to the flattened bucket, which is the
  // physics one runs such codes to see).
  const double v1 = config_.programme.amplitude_v(0.0);
  const double ratio = phys::matched_dt_per_dgamma_s(
      config_.ion, config_.ring, ensemble_.gamma_r(), v1);
  ensemble_.populate_gaussian_in_bucket(config_.sigma_dt_s / ratio,
                                        config_.sigma_dt_s, v1);
}

Snapshot LongSim::take_snapshot(double time_s) const {
  Snapshot s;
  s.time_s = time_s;
  s.turn = ensemble_.turn();
  s.gamma_r = ensemble_.gamma_r();
  s.f_rev_hz = phys::revolution_frequency_hz(ensemble_.gamma_r(),
                                             config_.ring.circumference_m);
  s.centroid_dt_s = ensemble_.centroid_dt_s();
  s.rms_dt_s = ensemble_.rms_dt_s();
  s.rms_dgamma = ensemble_.rms_dgamma();
  s.emittance = ensemble_.emittance();
  s.profile = ensemble_.profile(-config_.profile_window_s,
                                config_.profile_window_s,
                                config_.profile_bins);
  return s;
}

LongSimResult LongSim::run() {
  LongSimResult result;
  const auto t0 = std::chrono::steady_clock::now();

  double time = 0.0;
  double next_snapshot = 0.0;
  while (time < config_.duration_s) {
    if (time >= next_snapshot) {
      result.snapshots.push_back(take_snapshot(time));
      next_snapshot += config_.snapshot_every_s;
    }
    const double t_rev = phys::revolution_time_s(
        ensemble_.gamma_r(), config_.ring.circumference_m);
    const double omega_rf = kTwoPi * config_.ring.harmonic / t_rev;
    const double v1 = config_.programme.amplitude_v(time);
    const double phi_s = config_.programme.sync_phase_rad(time);
    const double v_sync = v1 * std::sin(phi_s);

    if (config_.h2_ratio != 0.0) {
      // Dual-harmonic gap voltage around the synchronous phase.
      const phys::MultiHarmonicWaveform wave(
          omega_rf,
          {phys::HarmonicComponent{1, v1, phi_s},
           phys::HarmonicComponent{config_.h2_multiple, v1 * config_.h2_ratio,
                                   config_.h2_phase_rad +
                                       config_.h2_multiple * phi_s}});
      ensemble_.step_with_waveform([&](double dt) { return wave(dt); },
                                   v_sync);
    } else {
      phys::SineWaveform wave{v1, omega_rf, phi_s};
      ensemble_.step(wave, v_sync);
    }
    ++result.turns_tracked;
    time += t_rev;
  }
  result.snapshots.push_back(take_snapshot(time));

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

void LongSim::export_csv(const std::string& path, const LongSimResult& r) {
  std::vector<double> t, turn, gamma, frev, centroid, rms_dt, rms_dg, eps;
  for (const Snapshot& s : r.snapshots) {
    t.push_back(s.time_s);
    turn.push_back(static_cast<double>(s.turn));
    gamma.push_back(s.gamma_r);
    frev.push_back(s.f_rev_hz);
    centroid.push_back(s.centroid_dt_s);
    rms_dt.push_back(s.rms_dt_s);
    rms_dg.push_back(s.rms_dgamma);
    eps.push_back(s.emittance);
  }
  io::write_csv(path, {{"time_s", t, {}},
                       {"turn", turn, {}},
                       {"gamma_r", gamma, {}},
                       {"f_rev_hz", frev, {}},
                       {"centroid_dt_s", centroid, {}},
                       {"rms_dt_s", rms_dt, {}},
                       {"rms_dgamma", rms_dg, {}},
                       {"emittance", eps, {}}});
}

}  // namespace citl::offline
