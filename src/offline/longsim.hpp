// Offline longitudinal beam-dynamics simulator — the class of tool the
// paper's related work cites (ESME, Long1D, BLonD, §II): a config-driven
// many-particle tracker with RF programmes, acceleration, dual-harmonic
// cavities and periodic diagnostics snapshots.
//
// "Even on powerful computers, the computation time is of course far from
// the real-time requirements that stem from a hardware-in-the-loop setup"
// (§II) — bench_offline quantifies exactly that against our real-time loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "phys/ensemble.hpp"
#include "phys/multiharmonic.hpp"
#include "phys/phasespace.hpp"
#include "phys/rf.hpp"

namespace citl::offline {

struct LongSimConfig {
  phys::Ion ion = phys::ion_n14_7plus();
  phys::Ring ring = phys::sis18(4);
  double f_rev0_hz = 800.0e3;       ///< initial revolution frequency
  phys::RfProgramme programme = phys::RfProgramme::stationary(4860.0);
  /// Dual-harmonic cavity settings (ratio 0 disables the second cavity).
  double h2_ratio = 0.0;
  double h2_phase_rad = 3.14159265358979323846;  ///< BLF mode
  int h2_multiple = 2;

  std::size_t n_particles = 20'000;
  double sigma_dt_s = 25.0e-9;      ///< injected bunch length (rms)
  std::uint64_t seed = 1;

  double duration_s = 50.0e-3;
  double snapshot_every_s = 5.0e-3;
  std::size_t profile_bins = 64;
  double profile_window_s = 120.0e-9;  ///< half-width of the pickup gate
};

/// Periodic diagnostics record.
struct Snapshot {
  double time_s = 0.0;
  std::int64_t turn = 0;
  double gamma_r = 0.0;
  double f_rev_hz = 0.0;
  double centroid_dt_s = 0.0;
  double rms_dt_s = 0.0;
  double rms_dgamma = 0.0;
  double emittance = 0.0;
  phys::Profile profile{0.0, 1.0, {}};
};

struct LongSimResult {
  std::vector<Snapshot> snapshots;
  std::int64_t turns_tracked = 0;
  double wall_seconds = 0.0;  ///< measured tracking wall time

  /// Wall seconds per simulated second — > 1 means slower than real time,
  /// the §II claim about offline codes.
  [[nodiscard]] double slowdown(double simulated_s) const {
    return simulated_s > 0.0 ? wall_seconds / simulated_s : 0.0;
  }
};

class LongSim {
 public:
  explicit LongSim(LongSimConfig config, ThreadPool* pool = nullptr);

  /// Tracks the configured duration, collecting snapshots.
  [[nodiscard]] LongSimResult run();

  /// Writes a snapshot table (one row each) as CSV.
  static void export_csv(const std::string& path, const LongSimResult& r);

  [[nodiscard]] const phys::EnsembleTracker& ensemble() const {
    return ensemble_;
  }
  [[nodiscard]] phys::EnsembleTracker& ensemble() { return ensemble_; }

 private:
  [[nodiscard]] Snapshot take_snapshot(double time_s) const;

  LongSimConfig config_;
  phys::EnsembleTracker ensemble_;
};

}  // namespace citl::offline
