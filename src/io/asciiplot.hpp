// Terminal line plots so bench binaries can show the *shape* of a series
// (Fig. 2 signal snapshots, Fig. 5 damping envelopes) without a plotting
// stack. Good enough to eyeball oscillation frequency and decay.
#pragma once

#include <span>
#include <string>

namespace citl::io {

struct PlotOptions {
  int width = 100;    ///< character columns
  int height = 20;    ///< character rows
  std::string title;
  std::string y_label;
  std::string x_label;
};

/// Renders y(x) as an ASCII scatter/line chart with axis annotations.
[[nodiscard]] std::string ascii_plot(std::span<const double> x,
                                     std::span<const double> y,
                                     const PlotOptions& options = {});

/// Overlay of two series on common axes ('*' and 'o').
[[nodiscard]] std::string ascii_plot2(std::span<const double> x1,
                                      std::span<const double> y1,
                                      std::span<const double> x2,
                                      std::span<const double> y2,
                                      const PlotOptions& options = {});

}  // namespace citl::io
