#include "io/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/error.hpp"

namespace citl::io {

namespace {

/// Writes one numeric cell. Non-finite values get canonical spellings:
/// stream insertion of NaN/inf is platform text ("nan", "-nan(ind)",
/// "1.#INF", ...), which would corrupt the robustness columns that can
/// legitimately carry non-finite metrics next to finite_output_ratio.
void put_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "nan";
  } else if (std::isinf(v)) {
    os << (v < 0.0 ? "-inf" : "inf");
  } else {
    os << v;
  }
}

}  // namespace

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string csv_to_string(const std::vector<Column>& columns) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) os << ',';
    os << csv_escape(columns[c].name);
  }
  os << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) os << ',';
      const Column& col = columns[c];
      if (col.is_text()) {
        if (r < col.labels.size()) os << csv_escape(col.labels[r]);
      } else if (r < col.values.size()) {
        put_number(os, col.values[r]);
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string csv_format_number(double value) {
  std::ostringstream os;
  os << std::setprecision(17);
  put_number(os, value);
  return os.str();
}

double csv_parse_number(std::string_view field) {
  const auto fail = [&]() -> double {
    throw ConfigError("not a numeric CSV cell: '" + std::string(field) + "'");
  };
  std::string_view body = field;
  double sign = 1.0;
  if (!body.empty() && (body.front() == '+' || body.front() == '-')) {
    if (body.front() == '-') sign = -1.0;
    body.remove_prefix(1);
  }
  const auto equals_ci = [&](std::string_view word) {
    if (body.size() != word.size()) return false;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(body[i])) != word[i]) {
        return false;
      }
    }
    return true;
  };
  if (equals_ci("nan")) return std::numeric_limits<double>::quiet_NaN();
  if (equals_ci("inf") || equals_ci("infinity")) {
    return sign * std::numeric_limits<double>::infinity();
  }
  if (body.empty()) fail();
  // std::from_chars, not strtod: strtod honours the process locale, so a
  // host running under e.g. de_DE.UTF-8 would reject "3.14" (comma decimal
  // separator). from_chars always parses the C-locale format and needs no
  // NUL terminator. It does not accept a sign itself — `body` already has
  // the sign stripped, which also rejects strtod-isms like "0x1p3" with a
  // second sign or embedded whitespace.
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), v);
  if (ec != std::errc() || ptr != body.data() + body.size()) fail();
  return sign * v;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;       // inside a quoted field
  bool any_field = false;    // current row has content (field char or comma)

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    any_field = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // doubled quote inside a quoted field
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += ch;  // commas and line breaks are literal when quoted
      }
      continue;
    }
    switch (ch) {
      case '"':
        quoted = true;
        any_field = true;
        break;
      case ',':
        end_field();
        any_field = true;
        break;
      case '\r':
        // CRLF: consume the CR, the LF below ends the row.
        break;
      case '\n':
        end_row();
        break;
      default:
        field += ch;
        any_field = true;
        break;
    }
  }
  // Final row without a trailing newline.
  if (any_field || !field.empty() || !row.empty()) end_row();
  return rows;
}

void write_csv(const std::string& path, const std::vector<Column>& columns) {
  std::ofstream f(path);
  if (!f) throw ConfigError("cannot open for writing: " + path);
  f << csv_to_string(columns);
  if (!f) throw ConfigError("write failed: " + path);
}

}  // namespace citl::io
