#include "io/csv.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace citl::io {

std::string csv_to_string(const std::vector<Column>& columns) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) os << ',';
    os << columns[c].name;
  }
  os << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.values.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) os << ',';
      if (r < columns[c].values.size()) os << columns[c].values[r];
    }
    os << '\n';
  }
  return os.str();
}

void write_csv(const std::string& path, const std::vector<Column>& columns) {
  std::ofstream f(path);
  if (!f) throw ConfigError("cannot open for writing: " + path);
  f << csv_to_string(columns);
  if (!f) throw ConfigError("write failed: " + path);
}

}  // namespace citl::io
