#include "io/csv.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace citl::io {

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string csv_to_string(const std::vector<Column>& columns) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) os << ',';
    os << csv_escape(columns[c].name);
  }
  os << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) os << ',';
      const Column& col = columns[c];
      if (col.is_text()) {
        if (r < col.labels.size()) os << csv_escape(col.labels[r]);
      } else if (r < col.values.size()) {
        os << col.values[r];
      }
    }
    os << '\n';
  }
  return os.str();
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;       // inside a quoted field
  bool any_field = false;    // current row has content (field char or comma)

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    any_field = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // doubled quote inside a quoted field
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += ch;  // commas and line breaks are literal when quoted
      }
      continue;
    }
    switch (ch) {
      case '"':
        quoted = true;
        any_field = true;
        break;
      case ',':
        end_field();
        any_field = true;
        break;
      case '\r':
        // CRLF: consume the CR, the LF below ends the row.
        break;
      case '\n':
        end_row();
        break;
      default:
        field += ch;
        any_field = true;
        break;
    }
  }
  // Final row without a trailing newline.
  if (any_field || !field.empty() || !row.empty()) end_row();
  return rows;
}

void write_csv(const std::string& path, const std::vector<Column>& columns) {
  std::ofstream f(path);
  if (!f) throw ConfigError("cannot open for writing: " + path);
  f << csv_to_string(columns);
  if (!f) throw ConfigError("write failed: " + path);
}

}  // namespace citl::io
