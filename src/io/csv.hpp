// CSV output for recorded traces and bench series.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace citl::io {

/// A named column: numeric (`values`) or text (`labels`). A column is text
/// when `labels` is non-empty; sweep reports use one text column for the
/// scenario names next to the metric columns.
struct Column {
  std::string name;
  std::vector<double> values;
  std::vector<std::string> labels;

  [[nodiscard]] bool is_text() const noexcept { return !labels.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return is_text() ? labels.size() : values.size();
  }
};

/// Writes columns to `path` as RFC 4180 CSV (header row, '.' decimal
/// separator, full double precision). Text cells and header names containing
/// a comma, quote, CR or LF are quoted with '"' doubled; numbers are never
/// quoted. Columns may have different lengths; missing cells are left empty.
/// Throws ConfigError on IO failure.
void write_csv(const std::string& path, const std::vector<Column>& columns);

/// Renders the same CSV to a string (used by tests).
[[nodiscard]] std::string csv_to_string(const std::vector<Column>& columns);

/// RFC 4180 quoting for one field: returns `field` unchanged when it needs
/// no quoting, otherwise wrapped in '"' with embedded quotes doubled.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Formats one numeric cell exactly as csv_to_string does: full round-trip
/// precision, and the canonical spellings `nan`, `inf`, `-inf` for
/// non-finite values (stream insertion of a NaN is platform text like
/// "-nan(ind)", which csv_parse_number could not reload).
[[nodiscard]] std::string csv_format_number(double value);

/// Parses a numeric cell written by csv_format_number: accepts the canonical
/// non-finite spellings (case-insensitive, optional sign) and ordinary
/// decimal/scientific literals. Throws ConfigError naming the field when the
/// cell is empty or not a number — the round trip with csv_format_number is
/// a tested invariant.
[[nodiscard]] double csv_parse_number(std::string_view field);

/// Parses RFC 4180 CSV text into rows of fields: quoted fields (including
/// embedded commas, doubled quotes and embedded line breaks), CRLF and LF
/// line endings. A trailing newline does not produce an empty row. The
/// inverse of csv_to_string for any rectangular table of escaped fields —
/// the round trip is a tested invariant.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::string_view text);

}  // namespace citl::io
