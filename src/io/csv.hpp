// CSV output for recorded traces and bench series.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace citl::io {

/// A named column of doubles.
struct Column {
  std::string name;
  std::vector<double> values;
};

/// Writes columns to `path` as RFC-4180-ish CSV (header row, '.' decimal
/// separator, full double precision). Columns may have different lengths;
/// missing cells are left empty. Throws ConfigError on IO failure.
void write_csv(const std::string& path, const std::vector<Column>& columns);

/// Renders the same CSV to a string (used by tests).
[[nodiscard]] std::string csv_to_string(const std::vector<Column>& columns);

}  // namespace citl::io
