#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/error.hpp"

namespace citl::io {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_level_.empty()) {
    if (!first_in_level_.back()) out_ += ',';
    first_in_level_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  first_in_level_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CITL_CHECK_MSG(!first_in_level_.empty(), "unbalanced end_object");
  first_in_level_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  first_in_level_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CITL_CHECK_MSG(!first_in_level_.empty(), "unbalanced end_array");
  first_in_level_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw ConfigError("cannot open '" + path + "' for writing");
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!f) throw ConfigError("write to '" + path + "' failed");
}

}  // namespace citl::io
