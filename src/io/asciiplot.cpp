#include "io/asciiplot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace citl::io {

namespace {

std::string short_num(double v) {
  std::ostringstream os;
  os << std::setprecision(4) << v;
  return os.str();
}

struct Extent {
  double lo = 0.0;
  double hi = 1.0;
};

Extent extent_of(std::span<const double> a, std::span<const double> b = {}) {
  Extent e{std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};
  for (double v : a) {
    if (!std::isfinite(v)) continue;
    e.lo = std::min(e.lo, v);
    e.hi = std::max(e.hi, v);
  }
  for (double v : b) {
    if (!std::isfinite(v)) continue;
    e.lo = std::min(e.lo, v);
    e.hi = std::max(e.hi, v);
  }
  if (!(e.lo < e.hi)) {
    e.lo -= 1.0;
    e.hi += 1.0;
  }
  return e;
}

void rasterise(std::vector<std::string>& grid, std::span<const double> x,
               std::span<const double> y, const Extent& ex, const Extent& ey,
               char mark) {
  const int w = static_cast<int>(grid[0].size());
  const int h = static_cast<int>(grid.size());
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) continue;
    const int cx = static_cast<int>(
        std::lround((x[i] - ex.lo) / (ex.hi - ex.lo) * (w - 1)));
    const int cy = static_cast<int>(
        std::lround((y[i] - ey.lo) / (ey.hi - ey.lo) * (h - 1)));
    if (cx < 0 || cx >= w || cy < 0 || cy >= h) continue;
    grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] =
        mark;
  }
}

std::string render(const std::vector<std::string>& grid, const Extent& ex,
                   const Extent& ey, const PlotOptions& opt) {
  std::ostringstream os;
  os << std::setprecision(4);
  if (!opt.title.empty()) os << opt.title << '\n';
  const int h = static_cast<int>(grid.size());
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      os << std::setw(11) << ey.hi << " |";
    } else if (r == h - 1) {
      os << std::setw(11) << ey.lo << " |";
    } else {
      os << std::string(11, ' ') << " |";
    }
    os << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(12, ' ') << '+' << std::string(grid[0].size(), '-')
     << '\n';
  os << std::string(13, ' ') << ex.lo;
  const std::string right = short_num(ex.hi);
  const long pad = static_cast<long>(grid[0].size()) -
                   static_cast<long>(right.size()) - 8;
  os << std::string(pad > 0 ? static_cast<std::size_t>(pad) : 1, ' ') << right;
  if (!opt.x_label.empty()) os << "  [" << opt.x_label << ']';
  os << '\n';
  return os.str();
}

}  // namespace

std::string ascii_plot(std::span<const double> x, std::span<const double> y,
                       const PlotOptions& opt) {
  std::vector<std::string> grid(
      static_cast<std::size_t>(opt.height),
      std::string(static_cast<std::size_t>(opt.width), ' '));
  const Extent ex = extent_of(x);
  const Extent ey = extent_of(y);
  rasterise(grid, x, y, ex, ey, '*');
  return render(grid, ex, ey, opt);
}

std::string ascii_plot2(std::span<const double> x1, std::span<const double> y1,
                        std::span<const double> x2, std::span<const double> y2,
                        const PlotOptions& opt) {
  std::vector<std::string> grid(
      static_cast<std::size_t>(opt.height),
      std::string(static_cast<std::size_t>(opt.width), ' '));
  const Extent ex = extent_of(x1, x2);
  const Extent ey = extent_of(y1, y2);
  rasterise(grid, x2, y2, ex, ey, 'o');
  rasterise(grid, x1, y1, ex, ey, '*');
  return render(grid, ex, ey, opt);
}

}  // namespace citl::io
