// Minimal JSON emission for sweep reports and machine-readable bench output.
//
// Append-only writer with automatic comma placement; numbers are printed
// with round-trip precision (%.17g) so a metrics file re-emitted from the
// same doubles is byte-identical — the property the sweep determinism tests
// pin. No parser: this repository only ever *produces* JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace citl::io {

/// Escapes a string for use inside JSON quotes (control chars, '"', '\\').
[[nodiscard]] std::string json_escape(std::string_view s);

/// Round-trip decimal rendering of a double; NaN and infinities (not
/// representable in JSON) become null.
[[nodiscard]] std::string json_number(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void separate();

  std::string out_;
  std::vector<bool> first_in_level_;
  bool after_key_ = false;
};

/// Writes a string to `path` verbatim. Throws ConfigError on IO failure.
void write_text_file(const std::string& path, std::string_view content);

}  // namespace citl::io
