#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace citl::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace citl::io
