// Aligned console tables for bench output (the "rows the paper reports").
#pragma once

#include <string>
#include <vector>

namespace citl::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells beyond the header count are ignored.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  [[nodiscard]] static std::string num(double v, int precision = 4);

  /// Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace citl::io
