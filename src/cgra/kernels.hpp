// Generator for the beam-model kernel (§IV-B).
//
// The paper's workflow is: host code knows the machine and ion parameters,
// bakes them into the C kernel as constants (the CGRA reconfigures from C in
// seconds, which is the point of using an overlay), compiles, and loads the
// context memories. We reproduce exactly that: `beam_kernel_source` emits
// the C kernel for a given configuration; `compile_kernel` (schedule.hpp)
// turns it into context memories.
#pragma once

#include <string>

#include "phys/ion.hpp"
#include "phys/machine.hpp"

namespace citl::cgra {

struct BeamKernelConfig {
  phys::Ion ion = phys::ion_n14_7plus();
  phys::Ring ring = phys::sis18();
  double gamma0 = 1.2;         ///< initial reference Lorentz factor
  double v_scale = 1.0;        ///< gap volts per ADC volt (default param)
  int n_bunches = 1;           ///< 1, 4 or 8 in the paper's experiments
  bool pipelined = false;      ///< emit the manual 2-stage loop pipelining
  bool interpolate = true;     ///< two-sample linear interpolation (§IV-B);
                               ///< false is the accuracy ablation
  double sample_rate_hz = 250.0e6;
};

/// Emits the per-revolution tracking kernel:
///   * reads the averaged reference period and derives the reference
///     particle's arrival offset dT from its current energy,
///   * fetches and linearly interpolates V_R from the reference buffer and
///     V_j from the gap buffer for each bunch j (bucket-spaced),
///   * writes each bunch's arrival time to the actuator *before* the
///     pipeline split (all IO in the first stage, §IV-B),
///   * applies eqs. (2), (3), (5), (6).
[[nodiscard]] std::string beam_kernel_source(const BeamKernelConfig& config);

/// Waveform-synthesis variant: instead of sampling the gap voltage from the
/// capture buffers, the kernel synthesises it on-chip with the CORDIC sine
/// operators (§III-C lists CORDIC in the PE palette) from two runtime
/// parameters, `v_hat` (gap amplitude [V]) and `gap_phase` (the jump +
/// control phase [rad], updated by the host every revolution). This trades
/// the SensorAccess round trips for CORDIC latency and frees the gap ADC
/// channel — the design alternative `bench_sched_lengths` ablates.
[[nodiscard]] std::string analytic_beam_kernel_source(
    const BeamKernelConfig& config);

/// Ramp-capable variant — the paper's announced challenge (§VI: "emulate the
/// acceleration phase with variable RF frequencies and amplitudes"). Instead
/// of integrating the reference energy (eq. (2)), which only works at fixed
/// frequency, this kernel re-derives γ_R every revolution from the period
/// detector — generalising the paper's §IV-B initialisation to every turn.
/// The synchronous energy gain never needs integrating: Δγ is defined
/// relative to the moving synchronous particle, so only the differential
/// kick ΔV = V(Δt) − V(0) enters eq. (3). The gap buffer is addressed
/// relative to the synchronous particle: the bus presents V(φ_s + ω·Δt).
[[nodiscard]] std::string ramp_beam_kernel_source(
    const BeamKernelConfig& config);

/// A small IO-free smoke kernel (used by tests and the quickstart example):
/// one damped-oscillator state pair, exercising every operator class.
[[nodiscard]] std::string demo_oscillator_source();

/// CORDIC-heavy showcase/benchmark kernel: IQ demodulation of a cavity probe
/// tone against an on-chip LO, with PI amplitude and phase servos driving a
/// first-order cavity model. Three trig evaluations per iteration plus
/// sqrt/div and predicated drive limiters — the worst case for the
/// interpreter's node-at-a-time walk and the headline workload for the
/// native codegen tier (bench_codegen). Schedules on grid_4x4 (the
/// anti-diagonal's CORDIC PEs serialise the trig ops).
[[nodiscard]] std::string cavity_iq_servo_source();

}  // namespace citl::cgra
