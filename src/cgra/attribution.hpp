// Per-op cycle attribution: which operators burn the schedule cycles of a
// compiled kernel.
//
// The schedule makespan is the initiation interval of the whole control loop
// (§IV-B), so shaving cycles off the right op kind is how the loop gets
// faster — but until now the only visibility was the aggregate
// ScheduleStats. This module breaks a CompiledKernel's schedule down per
// OpKind / functional unit:
//
//   * the per-ITERATION profile is static — it reads only the schedule, so
//     it is exactly deterministic and free of run-state,
//   * run totals are profile × iteration count (CgraMachine::iterations(),
//     BatchedCgraMachine lane iterations), which the machines track anyway,
//   * the machines also mirror the totals into registry counters
//     "cgra.op_cycles[op=<kind>,fu=<class>]" (resolved once at machine
//     construction; relaxed no-ops while the registry is disabled), which
//     the Prometheus exposition renders as one labelled series per op kind.
//
// Consumers: the operator console's `hotspots` command, the sweep report's
// per-kernel attribution section, and ROADMAP items 1/5 (codegen and
// scheduler search need to know what to optimise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgra/schedule.hpp"
#include "obs/metrics.hpp"

namespace citl::cgra {

/// Cycle share of one op kind within a kernel's schedule.
struct AttributionRow {
  OpKind kind = OpKind::kConst;
  OpClass unit = OpClass::kAlu;  ///< functional unit (op_class(kind))
  std::uint64_t ops = 0;         ///< node count (route hops for kMove)
  std::uint64_t cycles_per_iteration = 0;  ///< busy cycles per schedule pass
};

/// Static per-iteration cycle profile of a compiled kernel. Rows are sorted
/// by cycles_per_iteration descending (ties: op name ascending) — the
/// hotspot order.
struct KernelCycleProfile {
  std::string kernel_name;
  unsigned schedule_length = 0;    ///< makespan [CGRA ticks / iteration]
  int pe_count = 0;
  std::uint64_t busy_cycles = 0;   ///< sum of all rows' cycles
  double pe_utilisation = 0.0;     ///< busy / (pe_count * length)
  std::vector<AttributionRow> rows;
};

/// Computes the profile from the schedule alone (deterministic; no machine
/// state). Route hops inserted by the scheduler appear as an OpKind::kMove
/// row with one cycle per hop.
[[nodiscard]] KernelCycleProfile kernel_cycle_profile(
    const CompiledKernel& kernel);

/// Registry metric name for one attribution row:
/// "cgra.op_cycles[op=<op_name>,fu=<class_name>]".
[[nodiscard]] std::string attribution_metric_name(const AttributionRow& row);

/// Pre-resolved global-registry counter handles for a kernel's attribution
/// rows. Machines construct one of these once (name lookups take the
/// registry mutex) and call add_iterations() per committed iteration — a
/// handful of relaxed-atomic adds, each a no-op while the registry is
/// disabled. Never touches machine state, so it cannot perturb results.
class AttributionCounters {
 public:
  AttributionCounters() = default;
  explicit AttributionCounters(const CompiledKernel& kernel);

  /// Credits every op kind with `n` iterations' worth of cycles.
  void add_iterations(std::uint64_t n) noexcept;

 private:
  struct Entry {
    obs::Counter* cycles = nullptr;
    std::uint64_t cycles_per_iteration = 0;
  };
  std::vector<Entry> entries_;
};

/// Renders the profile as an aligned hotspot table, cycles scaled by
/// `iterations` (pass 1 for the per-iteration view). Columns: op, unit,
/// ops, cyc/iter, share of busy cycles, total cycles.
[[nodiscard]] std::string hotspot_table(const KernelCycleProfile& profile,
                                        std::uint64_t iterations);

}  // namespace citl::cgra

namespace citl::io {
class JsonWriter;
}  // namespace citl::io

namespace citl::cgra {

/// Appends the profile (scaled by `iterations`) to a JSON writer as
///   {"kernel":...,"schedule_length":...,"busy_cycles_per_iteration":...,
///    "pe_utilisation":...,"iterations":...,"ops":[{...},...]}
/// Used by the sweep report's attribution section.
void append_attribution_json(io::JsonWriter& w,
                             const KernelCycleProfile& profile,
                             std::uint64_t iterations);

}  // namespace citl::cgra
