#include "cgra/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "cgra/lower.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace citl::cgra {

namespace {

/// Deterministic L-shaped route: rows first, then columns. Returns the PEs
/// visited after leaving `from`, ending at `to` (empty when from == to).
std::vector<PeId> route_path(PeId from, PeId to) {
  std::vector<PeId> path;
  PeId cur = from;
  while (cur.row != to.row) {
    cur.row += (to.row > cur.row) ? 1 : -1;
    path.push_back(cur);
  }
  while (cur.col != to.col) {
    cur.col += (to.col > cur.col) ? 1 : -1;
    path.push_back(cur);
  }
  return path;
}

/// Mutable occupancy tables used while scheduling.
class Occupancy {
 public:
  explicit Occupancy(const CgraArch& arch)
      : arch_(arch),
        busy_(static_cast<std::size_t>(arch.pe_count())),
        route_(static_cast<std::size_t>(arch.pe_count())) {}

  [[nodiscard]] bool pe_free(PeId pe, unsigned start, unsigned len) const {
    const auto& b = busy_[static_cast<std::size_t>(arch_.index(pe))];
    for (unsigned c = start; c < start + len; ++c) {
      if (c < b.size() && b[c]) return false;
    }
    return true;
  }

  void reserve_pe(PeId pe, unsigned start, unsigned len) {
    auto& b = busy_[static_cast<std::size_t>(arch_.index(pe))];
    if (b.size() < start + len) b.resize(start + len, 0);
    for (unsigned c = start; c < start + len; ++c) b[c] = 1;
  }

  [[nodiscard]] bool route_free(PeId pe, unsigned cycle) const {
    const auto& r = route_[static_cast<std::size_t>(arch_.index(pe))];
    return cycle >= r.size() || r[cycle] < arch_.route_ports_per_pe;
  }

  [[nodiscard]] unsigned route_used(PeId pe, unsigned cycle) const {
    const auto& r = route_[static_cast<std::size_t>(arch_.index(pe))];
    return cycle < r.size() ? r[cycle] : 0u;
  }

  void reserve_route(PeId pe, unsigned cycle) {
    auto& r = route_[static_cast<std::size_t>(arch_.index(pe))];
    if (r.size() <= cycle) r.resize(cycle + 1, 0);
    ++r[cycle];
  }

 private:
  const CgraArch& arch_;
  std::vector<std::vector<std::uint8_t>> busy_;
  std::vector<std::vector<std::uint8_t>> route_;
};

class ListScheduler {
 public:
  ListScheduler(const Dfg& dfg, const CgraArch& arch)
      : dfg_(dfg), arch_(arch), occ_(arch) {}

  Schedule run() {
    arch_.validate();
    dfg_.validate();
    check_capabilities();

    const auto crit = dfg_.criticality(arch_.latency);
    const std::size_t n = dfg_.size();
    placement_.resize(n);
    placed_.assign(n, false);

    // Remaining intra-iteration predecessor counts.
    std::vector<int> pending(n, 0);
    std::vector<std::vector<NodeId>> succs(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (NodeId p : dfg_.intra_preds(static_cast<NodeId>(i))) {
        ++pending[i];
        succs[static_cast<std::size_t>(p)].push_back(static_cast<NodeId>(i));
      }
    }

    std::vector<NodeId> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (pending[i] == 0) ready.push_back(static_cast<NodeId>(i));
    }

    std::size_t scheduled = 0;
    while (scheduled < n) {
      CITL_CHECK_MSG(!ready.empty(), "scheduler wedged: no ready node");
      // Pick the ready node with the longest remaining critical path.
      std::size_t best = 0;
      for (std::size_t i = 1; i < ready.size(); ++i) {
        const auto a = static_cast<std::size_t>(ready[i]);
        const auto b = static_cast<std::size_t>(ready[best]);
        if (crit[a] > crit[b] || (crit[a] == crit[b] && ready[i] < ready[best])) {
          best = i;
        }
      }
      const NodeId v = ready[best];
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
      place(v);
      placed_[static_cast<std::size_t>(v)] = true;
      ++scheduled;
      for (NodeId s : succs[static_cast<std::size_t>(v)]) {
        if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
    }

    Schedule sched;
    sched.placement = std::move(placement_);
    sched.hops = std::move(hops_);
    unsigned length = 0;
    for (const auto& p : sched.placement) length = std::max(length, p.finish);
    // Cross-iteration edges (pipeline registers, state feedback) must close
    // within one initiation interval: value written in iteration k, read in
    // iteration k+1 => start[consumer] + L >= finish[producer] + distance.
    for (std::size_t i = 0; i < dfg_.size(); ++i) {
      const Node& node = dfg_.node(static_cast<NodeId>(i));
      for (unsigned a = 0; a < node.arity(); ++a) {
        const NodeId p = node.args[a];
        if (!dfg_.is_pipeline_edge(p, static_cast<NodeId>(i))) continue;
        length = std::max(length, cross_iteration_bound(
                                      sched, p, static_cast<NodeId>(i)));
      }
    }
    for (const auto& sv : dfg_.states()) {
      length = std::max(length, cross_iteration_bound(sched, sv.update, sv.node));
    }
    sched.length = length;
    return sched;
  }

 private:
  [[nodiscard]] unsigned cross_iteration_bound(const Schedule& sched,
                                               NodeId producer,
                                               NodeId consumer) const {
    const auto& pp = sched.placement[static_cast<std::size_t>(producer)];
    const auto& pc = sched.placement[static_cast<std::size_t>(consumer)];
    const int d = CgraArch::distance(pp.pe, pc.pe);
    const long need = static_cast<long>(pp.finish) + d -
                      static_cast<long>(pc.start);
    return need > 0 ? static_cast<unsigned>(need) : 0u;
  }

  void check_capabilities() const {
    for (const Node& node : dfg_.nodes()) {
      const OpClass c = op_class(node.kind);
      bool ok = false;
      for (const auto& pe : arch_.pes) {
        if (pe.supports(c)) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        throw ConfigError(std::string("no PE supports operator class for '") +
                          std::string(op_name(node.kind)) + "'");
      }
    }
  }

  /// Earliest cycle at which `value` (already placed) can be delivered to
  /// `dest`, given route-port availability; appends the chosen forwarding
  /// slots to `hops` (not yet globally reserved). Slots already planned in
  /// `hops` for this candidate count against the port budget too — two
  /// operands of one node may contend for the same intermediate PE.
  [[nodiscard]] unsigned plan_delivery(NodeId value, PeId dest,
                                       std::vector<RouteHop>* hops) const {
    const auto& pp = placement_[static_cast<std::size_t>(value)];
    const auto cached = delivered_.find({value, arch_.index(dest)});
    if (cached != delivered_.end()) return cached->second;
    const auto path = route_path(pp.pe, dest);
    if (path.empty()) return pp.finish;  // produced in place
    auto slot_free = [&](PeId pe, unsigned cycle) {
      if (!occ_.route_free(pe, cycle)) return false;
      unsigned planned = 0;
      for (const RouteHop& h : *hops) {
        if (h.pe == pe && h.cycle == cycle) ++planned;
      }
      // occ_.route_free only says "< ports"; planned hops eat the remainder.
      unsigned used = occ_.route_used(pe, cycle);
      return used + planned < arch_.route_ports_per_pe;
    };
    // Try increasing departure delays until all intermediate route ports
    // are free. The final hop lands in the consumer's input register and
    // does not occupy a route port.
    for (unsigned delay = 0;; ++delay) {
      bool ok = true;
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        if (!slot_free(path[h],
                       pp.finish + delay + static_cast<unsigned>(h) + 1)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (std::size_t h = 0; h + 1 < path.size(); ++h) {
          hops->push_back(RouteHop{
              value, path[h], pp.finish + delay + static_cast<unsigned>(h) + 1});
        }
        return pp.finish + delay + static_cast<unsigned>(path.size());
      }
      CITL_CHECK_MSG(delay < 4096, "routing livelock");
    }
  }

  void place(NodeId v) {
    const Node& node = dfg_.node(v);
    const unsigned lat = arch_.latency.of(node.kind);
    const OpClass cls = op_class(node.kind);

    auto preds = dfg_.intra_preds(v);
    // A node may use the same value twice (x*x); one delivery suffices.
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());

    unsigned best_start = ~0u;
    PeId best_pe{};
    std::vector<RouteHop> best_hops;

    for (int idx = 0; idx < arch_.pe_count(); ++idx) {
      const PeId pe = arch_.pe_at(idx);
      if (!arch_.caps(pe).supports(cls)) continue;

      std::vector<RouteHop> hops;
      unsigned lb = 0;
      for (NodeId p : preds) {
        lb = std::max(lb, plan_delivery(p, pe, &hops));
      }
      unsigned t = lb;
      while (!occ_.pe_free(pe, t, lat)) ++t;
      if (t < best_start ||
          (t == best_start && hops.size() < best_hops.size())) {
        best_start = t;
        best_pe = pe;
        best_hops = std::move(hops);
      }
    }
    CITL_CHECK_MSG(best_start != ~0u, "no feasible PE for node");

    occ_.reserve_pe(best_pe, best_start, lat);
    for (const RouteHop& h : best_hops) {
      occ_.reserve_route(h.pe, h.cycle);
      hops_.push_back(h);
    }
    for (NodeId p : preds) {
      delivered_[{p, arch_.index(best_pe)}] =
          std::max(placement_[static_cast<std::size_t>(p)].finish,
                   best_start);  // conservative: value parked at input
    }
    placement_[static_cast<std::size_t>(v)] =
        Placement{best_pe, best_start, best_start + lat};
  }

  const Dfg& dfg_;
  const CgraArch& arch_;
  Occupancy occ_;
  std::vector<Placement> placement_;
  std::vector<bool> placed_;
  std::vector<RouteHop> hops_;
  std::map<std::pair<NodeId, int>, unsigned> delivered_;
};

}  // namespace

Schedule schedule_dfg(const Dfg& dfg, const CgraArch& arch) {
  Schedule sched;
  {
    CITL_TRACE_SPAN("cgra.compile.list_schedule");
    ListScheduler s(dfg, arch);
    sched = s.run();
  }
  {
    CITL_TRACE_SPAN("cgra.compile.verify");
    verify_schedule(dfg, arch, sched);
  }
  return sched;
}

CompiledKernel compile_kernel(std::string_view source, const CgraArch& arch,
                              std::string name) {
  // Pass-level spans make the compiler's cost visible in a trace; the
  // histogram records what came out (the real-time budget driver, §IV-B).
  CITL_TRACE_SPAN("cgra.compile");
  CompiledKernel k;
  k.name = std::move(name);
  {
    CITL_TRACE_SPAN("cgra.compile.frontend");
    k.dfg = compile_to_dfg(source);
  }
  k.arch = arch;
  k.schedule = schedule_dfg(k.dfg, arch);
  obs::Registry::global().counter("cgra.compilations").add();
  obs::Registry::global()
      .histogram("cgra.schedule_length_cycles",
                 {16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0})
      .observe(static_cast<double>(k.schedule.length));
  return k;
}

void verify_schedule(const Dfg& dfg, const CgraArch& arch,
                     const Schedule& schedule) {
  CITL_CHECK_MSG(schedule.placement.size() == dfg.size(),
                 "placement size mismatch");
  // Capability + latency + PE exclusivity.
  std::map<std::pair<int, unsigned>, int> pe_busy;  // (pe index, cycle) -> node
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const Node& n = dfg.node(static_cast<NodeId>(i));
    const Placement& p = schedule.placement[i];
    CITL_CHECK_MSG(arch.caps(p.pe).supports(op_class(n.kind)),
                   "node placed on incapable PE");
    CITL_CHECK_MSG(p.finish == p.start + arch.latency.of(n.kind),
                   "placement latency mismatch");
    for (unsigned c = p.start; c < p.finish; ++c) {
      const auto key = std::make_pair(arch.index(p.pe), c);
      CITL_CHECK_MSG(!pe_busy.contains(key), "two ops overlap on one PE");
      pe_busy[key] = static_cast<int>(i);
    }
  }
  // Precedence with routing distance for intra-iteration edges.
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const Placement& pc = schedule.placement[i];
    for (NodeId pred : dfg.intra_preds(static_cast<NodeId>(i))) {
      const Placement& pp = schedule.placement[static_cast<std::size_t>(pred)];
      const int d = CgraArch::distance(pp.pe, pc.pe);
      CITL_CHECK_MSG(pc.start >= pp.finish + static_cast<unsigned>(d),
                     "operand not deliverable before consumer start");
    }
  }
  // Route-port limits.
  std::map<std::pair<int, unsigned>, unsigned> route_count;
  for (const RouteHop& h : schedule.hops) {
    const auto key = std::make_pair(arch.index(h.pe), h.cycle);
    CITL_CHECK_MSG(++route_count[key] <= arch.route_ports_per_pe,
                   "route port oversubscribed");
  }
  // Cross-iteration closure.
  auto check_cross = [&](NodeId producer, NodeId consumer) {
    const Placement& pp = schedule.placement[static_cast<std::size_t>(producer)];
    const Placement& pc = schedule.placement[static_cast<std::size_t>(consumer)];
    const int d = CgraArch::distance(pp.pe, pc.pe);
    CITL_CHECK_MSG(static_cast<long>(pc.start) + schedule.length >=
                       static_cast<long>(pp.finish) + d,
                   "cross-iteration edge does not close within II");
  };
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const Node& n = dfg.node(static_cast<NodeId>(i));
    for (unsigned a = 0; a < n.arity(); ++a) {
      if (dfg.is_pipeline_edge(n.args[a], static_cast<NodeId>(i))) {
        check_cross(n.args[a], static_cast<NodeId>(i));
      }
    }
  }
  for (const auto& sv : dfg.states()) check_cross(sv.update, sv.node);
  // Makespan covers every op.
  for (const Placement& p : schedule.placement) {
    CITL_CHECK_MSG(p.finish <= schedule.length, "op finishes after makespan");
  }
}

ScheduleStats schedule_stats(const Dfg& dfg, const CgraArch& arch,
                             const Schedule& schedule) {
  ScheduleStats st;
  st.length = schedule.length;
  const auto crit = dfg.criticality(arch.latency);
  for (unsigned c : crit) st.critical_path = std::max(st.critical_path, c);
  st.cp_efficiency =
      st.length > 0 ? static_cast<double>(st.critical_path) / st.length : 0.0;

  std::vector<unsigned> busy(static_cast<std::size_t>(arch.pe_count()), 0);
  unsigned total_busy = 0;
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const Placement& p = schedule.placement[i];
    const unsigned cycles = p.finish - p.start;
    busy[static_cast<std::size_t>(arch.index(p.pe))] += cycles;
    total_busy += cycles;
  }
  st.pe_utilisation =
      st.length > 0
          ? static_cast<double>(total_busy) /
                (static_cast<double>(arch.pe_count()) * st.length)
          : 0.0;
  for (int i = 0; i < arch.pe_count(); ++i) {
    if (busy[static_cast<std::size_t>(i)] > st.busiest_pe_cycles) {
      st.busiest_pe_cycles = busy[static_cast<std::size_t>(i)];
      st.busiest_pe = arch.pe_at(i);
    }
  }
  st.route_hops = schedule.hops.size();
  return st;
}

std::string CompiledKernel::dump_contexts() const {
  // Group operations and route hops per PE, ordered by cycle — this is the
  // content that would be loaded into each PE's context memory.
  struct Entry {
    unsigned cycle;
    std::string text;
  };
  std::vector<std::vector<Entry>> per_pe(
      static_cast<std::size_t>(arch.pe_count()));
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const Node& n = dfg.node(static_cast<NodeId>(i));
    const Placement& p = schedule.placement[i];
    std::ostringstream os;
    os << op_name(n.kind) << " %" << i;
    for (unsigned a = 0; a < n.arity(); ++a) os << " %" << n.args[a];
    if (n.kind == OpKind::kConst) os << " = " << n.constant;
    if (!n.name.empty()) os << " [" << n.name << "]";
    per_pe[static_cast<std::size_t>(arch.index(p.pe))].push_back(
        {p.start, os.str()});
  }
  for (const RouteHop& h : schedule.hops) {
    per_pe[static_cast<std::size_t>(arch.index(h.pe))].push_back(
        {h.cycle, "route %" + std::to_string(h.value)});
  }
  std::ostringstream os;
  os << "schedule length: " << schedule.length << " ticks\n";
  for (int idx = 0; idx < arch.pe_count(); ++idx) {
    auto& entries = per_pe[static_cast<std::size_t>(idx)];
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.cycle < b.cycle; });
    const PeId pe = arch.pe_at(idx);
    os << "PE(" << pe.row << ',' << pe.col << "):\n";
    for (const auto& e : entries) {
      os << "  @" << e.cycle << "  " << e.text << '\n';
    }
  }
  return os.str();
}

}  // namespace citl::cgra
