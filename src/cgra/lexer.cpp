#include "cgra/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "core/error.hpp"

namespace citl::cgra {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  while (i < src.size()) {
    const char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        advance(1);
      }
      if (i + 1 >= src.size()) {
        throw CompileError("unterminated block comment", line, col);
      }
      advance(2);
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(c)) {
      Token t;
      t.kind = TokKind::kIdent;
      t.line = line;
      t.column = col;
      std::size_t j = i;
      while (j < src.size() && ident_char(src[j])) ++j;
      t.text.assign(src.substr(i, j - i));
      advance(j - i);
      out.push_back(std::move(t));
      continue;
    }
    // Numbers: [digits][.digits][e[+-]digits][f]
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      Token t;
      t.kind = TokKind::kNumber;
      t.line = line;
      t.column = col;
      std::size_t j = i;
      while (j < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[j])) ||
              src[j] == '.')) {
        ++j;
      }
      if (j < src.size() && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < src.size() && (src[k] == '+' || src[k] == '-')) ++k;
        if (k >= src.size() || !std::isdigit(static_cast<unsigned char>(src[k]))) {
          throw CompileError("malformed exponent", line, col);
        }
        while (k < src.size() && std::isdigit(static_cast<unsigned char>(src[k]))) {
          ++k;
        }
        j = k;
      }
      t.text.assign(src.substr(i, j - i));
      t.number = std::strtod(t.text.c_str(), nullptr);
      advance(j - i);
      // Optional float suffix.
      if (i < src.size() && (src[i] == 'f' || src[i] == 'F')) advance(1);
      out.push_back(std::move(t));
      continue;
    }
    // Two-character punctuation.
    if (i + 1 < src.size()) {
      const std::string_view two = src.substr(i, 2);
      if (two == "==" || two == "<=" || two == ">=" || two == "!=") {
        Token t;
        t.kind = TokKind::kPunct;
        t.text.assign(two);
        t.line = line;
        t.column = col;
        advance(2);
        out.push_back(std::move(t));
        continue;
      }
    }
    // Single-character punctuation.
    const std::string singles = "(),;=+-*/<>?:";
    if (singles.find(c) != std::string::npos) {
      Token t;
      t.kind = TokKind::kPunct;
      t.text.assign(1, c);
      t.line = line;
      t.column = col;
      advance(1);
      out.push_back(std::move(t));
      continue;
    }
    throw CompileError(std::string("unexpected character '") + c + "'", line,
                       col);
  }

  Token end;
  end.kind = TokKind::kEnd;
  end.line = line;
  end.column = col;
  out.push_back(std::move(end));
  return out;
}

}  // namespace citl::cgra
