// Abstract syntax tree for the kernel language.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace citl::cgra {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kNumber,   // literal
    kVar,      // identifier reference
    kUnary,    // op: "-"
    kBinary,   // op: + - * / < <= > >= == !=
    kTernary,  // args = {cond, then, else}
    kCall,     // name = builtin, args = arguments
  };

  Kind kind;
  double number = 0.0;
  std::string name;  // variable name, builtin name, or operator spelling
  std::vector<ExprPtr> args;
  int line = 0;
  int column = 0;
};

struct Stmt {
  enum class Kind {
    kDecl,           // [state|param] float name = init;
    kAssign,         // name = expr;
    kCallStmt,       // sensor_write(addr, value);
    kPipelineSplit,  // pipeline_split();
  };
  enum class Storage { kLocal, kState, kParam };

  Kind kind;
  Storage storage = Storage::kLocal;
  std::string name;
  ExprPtr value;      // initialiser / RHS / nullptr
  ExprPtr address;    // sensor_write address
  int line = 0;
  int column = 0;
};

struct Program {
  std::vector<Stmt> stmts;
};

}  // namespace citl::cgra
