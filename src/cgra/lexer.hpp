// Lexer for the CGRA kernel language (§III-C: "Programming of the CGRA is
// done using the C programming language").
//
// The language is the C subset the paper's toolflow consumes — straight-line
// float arithmetic forming the body of the per-revolution loop:
//
//   param float v_scale = 1000.0;      // runtime-settable parameter
//   state float dt = 0.0;              // loop-carried across revolutions
//   float a = sensor_read(65536.0 + 4.0);
//   float b = a > 0.0 ? sqrtf(a) : 0.0;
//   sensor_write(196608.0, dt);
//   pipeline_split();                  // manual 2-stage loop pipelining
//   dt = dt + b * 2.0e-6;
//
// Supported: float declarations with state/param storage classes,
// assignments, + - * /, unary -, comparisons, ?:, parentheses, the builtins
// sensor_read/sensor_write/sqrtf/fabsf/fminf/fmaxf/floorf, and the
// pipeline_split() marker. No branches or loops — CGRAs predicate instead.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace citl::cgra {

enum class TokKind {
  kIdent,
  kNumber,
  kPunct,  // one of ( ) , ; = + - * / < > ? : ! and two-char == <= >= !=
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 1;
  int column = 1;

  [[nodiscard]] bool is_punct(std::string_view p) const {
    return kind == TokKind::kPunct && text == p;
  }
  [[nodiscard]] bool is_ident(std::string_view id) const {
    return kind == TokKind::kIdent && text == id;
  }
};

/// Tokenises kernel source. Throws CompileError on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace citl::cgra
