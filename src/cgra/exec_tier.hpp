// Kernel execution tiers.
//
// Both machines (CgraMachine, BatchedCgraMachine) can evaluate a compiled
// kernel through three interchangeable back ends with bit-identical results
// (the Codegen* tests pin it per kernel and precision):
//
//   kInterpreter — walk the dataflow graph node by node, dispatching on
//                  OpKind (the original engine; the cycle-accurate mode is
//                  always interpreted — it is the timing twin).
//   kBytecode    — a flat instruction stream lowered once from the compiled
//                  schedule: operand banks are pre-resolved (pipeline edges,
//                  param/state slots) and dispatch is a computed goto.
//                  Always available; no toolchain dependency.
//   kNative      — straight-line C++ emitted from the dataflow graph (SIMD
//                  over the SoA lanes), compiled by the host compiler,
//                  dlopen'd and cached on disk (cgra/codegen.hpp). Falls
//                  back to kBytecode when no compiler is available.
//   kAuto        — kNative when a host compiler can be found, else kBytecode.
//
// The tier is a configuration knob (FrameworkConfig / TurnLoopConfig /
// api::SessionConfig); a machine resolves kAuto and the no-compiler fallback
// at construction and reports the tier it actually runs via exec_tier().
#pragma once

#include <cstdint>
#include <string_view>

namespace citl::cgra {

enum class ExecTier : std::uint8_t {
  kInterpreter = 0,
  kBytecode = 1,
  kNative = 2,
  kAuto = 3,
};

[[nodiscard]] constexpr std::string_view exec_tier_name(ExecTier t) noexcept {
  switch (t) {
    case ExecTier::kInterpreter: return "interpreter";
    case ExecTier::kBytecode: return "bytecode";
    case ExecTier::kNative: return "native";
    case ExecTier::kAuto: return "auto";
  }
  return "?";
}

/// Parses an exec_tier_name() string; returns false on unknown names.
[[nodiscard]] constexpr bool parse_exec_tier(std::string_view s,
                                             ExecTier* out) noexcept {
  if (s == "interpreter") { *out = ExecTier::kInterpreter; return true; }
  if (s == "bytecode") { *out = ExecTier::kBytecode; return true; }
  if (s == "native") { *out = ExecTier::kNative; return true; }
  if (s == "auto") { *out = ExecTier::kAuto; return true; }
  return false;
}

}  // namespace citl::cgra
