#include "cgra/batch.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "cgra/bytecode.hpp"
#include "cgra/codegen.hpp"
#include "cgra/exec.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace citl::cgra {

namespace {

/// Lane maps: the full-width pass uses the identity (dense rows, the
/// vectorizable fast path); partial passes indirect through a lane-id list.
struct IdentityMap {
  std::size_t operator()(std::size_t k) const noexcept { return k; }
};
struct IndexMap {
  const std::uint32_t* ids;
  std::size_t operator()(std::size_t k) const noexcept { return ids[k]; }
};

/// C-ABI bus trampolines for generated kernels (lane-indexed bus).
double lane_bus_read(void* bus, std::uint32_t lane, double addr) {
  const DecodedAddress da = decode_address(addr);
  return static_cast<LaneSensorBus*>(bus)->read(lane, da.region, da.offset);
}

void lane_bus_write(void* bus, std::uint32_t lane, double addr, double value) {
  const DecodedAddress da = decode_address(addr);
  static_cast<LaneSensorBus*>(bus)->write(lane, da.region, da.offset, value);
}

double lane_bus_read_at(void* bus, std::uint32_t lane, std::uint32_t region,
                        double offset) {
  return static_cast<LaneSensorBus*>(bus)->read(
      lane, static_cast<SensorRegion>(region), offset);
}

void lane_bus_write_at(void* bus, std::uint32_t lane, std::uint32_t region,
                       double offset, double value) {
  static_cast<LaneSensorBus*>(bus)->write(
      lane, static_cast<SensorRegion>(region), offset, value);
}

obs::Counter& tier_iteration_counter(ExecTier tier) {
  static obs::Counter* const counters[3] = {
      &obs::Registry::global().counter("cgra.exec.iterations.interpreter"),
      &obs::Registry::global().counter("cgra.exec.iterations.bytecode"),
      &obs::Registry::global().counter("cgra.exec.iterations.native")};
  return *counters[static_cast<int>(tier)];
}

}  // namespace

BatchedCgraMachine::BatchedCgraMachine(const CompiledKernel& kernel,
                                       std::size_t lanes, LaneSensorBus& bus,
                                       Precision precision, ExecTier tier)
    : kernel_(&kernel),
      bus_(&bus),
      precision_(precision),
      lanes_(lanes),
      attribution_counters_(kernel) {
  if (lanes == 0) {
    throw ConfigError("BatchedCgraMachine for kernel '" + kernel.name +
                      "' needs at least one lane");
  }
  tier_ = resolve_exec_tier(tier, kernel, precision, lanes_, &native_);
  if (tier_ == ExecTier::kBytecode) {
    bytecode_ = std::make_unique<BytecodeProgram>(kernel, lanes_);
  }
  values_.assign(kernel.dfg.size() * lanes_, 0.0);
  pipe_regs_.assign(kernel.dfg.size() * lanes_, 0.0);
  topo_ = kernel.dfg.topo_order();
  param_slot_.assign(kernel.dfg.size(), -1);
  state_slot_.assign(kernel.dfg.size(), -1);
  const auto& params = kernel.dfg.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    param_slot_[static_cast<std::size_t>(params[i].node)] =
        static_cast<int>(i);
  }
  const auto& states = kernel.dfg.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_slot_[static_cast<std::size_t>(states[i].node)] =
        static_cast<int>(i);
  }
  scratch_f_.assign(4 * lanes_, 0.0f);
  scratch_d_.assign(4 * lanes_, 0.0);
  lane_iterations_.assign(lanes_, 0);
  auto& reg = obs::Registry::global();
  obs_batched_ = &reg.counter("cgra.batch.iterations");
  obs_lane_iters_ = &reg.counter("cgra.batch.lane_iterations");
  obs_lanes_active_ = &reg.gauge("cgra.batch.lanes_active");
  obs_iterations_ = &reg.counter("cgra.iterations");
  obs_cycles_ = &reg.counter("cgra.schedule_cycles");
  obs_tier_iters_ = &tier_iteration_counter(tier_);
  reset();
}

void BatchedCgraMachine::reset() {
  const Dfg& g = kernel_->dfg;
  state_vals_.assign(g.states().size() * lanes_, 0.0);
  for (std::size_t i = 0; i < g.states().size(); ++i) {
    std::fill_n(state_vals_.begin() + static_cast<std::ptrdiff_t>(i * lanes_),
                lanes_, g.states()[i].initial);
  }
  param_vals_.assign(g.params().size() * lanes_, 0.0);
  for (std::size_t i = 0; i < g.params().size(); ++i) {
    std::fill_n(param_vals_.begin() + static_cast<std::ptrdiff_t>(i * lanes_),
                lanes_, g.params()[i].default_value);
  }
  std::fill(values_.begin(), values_.end(), 0.0);
  std::fill(pipe_regs_.begin(), pipe_regs_.end(), 0.0);
  std::fill(lane_iterations_.begin(), lane_iterations_.end(), 0);
  iterations_ = 0;
}

double BatchedCgraMachine::quantise(double v) const noexcept {
  return precision_ == Precision::kFloat32
             ? static_cast<double>(static_cast<float>(v))
             : v;
}

void BatchedCgraMachine::check_lane(std::size_t lane) const {
  if (lane >= lanes_) {
    detail::throw_lane_out_of_range(*kernel_, lane, lanes_);
  }
}

void BatchedCgraMachine::check_handle(bool valid, const char* what) const {
  if (!valid) detail::throw_invalid_handle(*kernel_, what);
}

void BatchedCgraMachine::set_param(ParamHandle h, double value,
                                   std::size_t lane) {
  check_lane(lane);
  check_handle(h.valid() && static_cast<std::size_t>(h.index) * lanes_ <
                                param_vals_.size(),
               "parameter");
  param_vals_[static_cast<std::size_t>(h.index) * lanes_ + lane] =
      quantise(value);
}

double BatchedCgraMachine::param(ParamHandle h, std::size_t lane) const {
  check_lane(lane);
  check_handle(h.valid() && static_cast<std::size_t>(h.index) * lanes_ <
                                param_vals_.size(),
               "parameter");
  return param_vals_[static_cast<std::size_t>(h.index) * lanes_ + lane];
}

void BatchedCgraMachine::set_state(StateHandle h, double value,
                                   std::size_t lane) {
  check_lane(lane);
  check_handle(h.valid() && static_cast<std::size_t>(h.index) * lanes_ <
                                state_vals_.size(),
               "state");
  state_vals_[static_cast<std::size_t>(h.index) * lanes_ + lane] =
      quantise(value);
}

double BatchedCgraMachine::state(StateHandle h, std::size_t lane) const {
  check_lane(lane);
  check_handle(h.valid() && static_cast<std::size_t>(h.index) * lanes_ <
                                state_vals_.size(),
               "state");
  return state_vals_[static_cast<std::size_t>(h.index) * lanes_ + lane];
}

void BatchedCgraMachine::snapshot_states(std::size_t lane, double* out) const {
  check_lane(lane);
  const std::size_t n = state_vals_.size() / (lanes_ > 0 ? lanes_ : 1);
  for (std::size_t s = 0; s < n; ++s) out[s] = state_vals_[s * lanes_ + lane];
}

void BatchedCgraMachine::restore_states(std::size_t lane,
                                        const double* values) {
  check_lane(lane);
  // Raw copy, no re-quantise: the image came from snapshot_states() and is
  // already at working precision, so the round-trip is bit-exact. Only this
  // lane's column is touched — siblings are unaffected.
  const std::size_t n = state_vals_.size() / (lanes_ > 0 ? lanes_ : 1);
  for (std::size_t s = 0; s < n; ++s) state_vals_[s * lanes_ + lane] = values[s];
}

void BatchedCgraMachine::snapshot_pipe_regs(std::size_t lane,
                                            double* out) const {
  check_lane(lane);
  const std::size_t n = pipe_regs_.size() / (lanes_ > 0 ? lanes_ : 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = pipe_regs_[i * lanes_ + lane];
}

void BatchedCgraMachine::restore_pipe_regs(std::size_t lane,
                                           const double* values) {
  check_lane(lane);
  const std::size_t n = pipe_regs_.size() / (lanes_ > 0 ? lanes_ : 1);
  for (std::size_t i = 0; i < n; ++i) pipe_regs_[i * lanes_ + lane] = values[i];
}

double BatchedCgraMachine::value(NodeId node, std::size_t lane) const {
  check_lane(lane);
  CITL_CHECK(node >= 0 &&
             static_cast<std::size_t>(node) < kernel_->dfg.size());
  return values_[static_cast<std::size_t>(node) * lanes_ + lane];
}

template <typename F>
F* BatchedCgraMachine::scratch_base() noexcept {
  if constexpr (std::is_same_v<F, float>) {
    return scratch_f_.data();
  } else {
    return scratch_d_.data();
  }
}

/// Batched CORDIC: reduce lane-by-lane (the reduction branches on the
/// quadrant), then rotate every lane together with a branch-free inner loop.
/// The select picks between the two candidate updates the scalar rotation
/// would have computed, so each lane's operation sequence — and therefore
/// its rounding — is identical to detail::cordic_rotate.
template <typename F, typename LaneMap>
void BatchedCgraMachine::eval_cordic(const Node& n, const double* in,
                                     double* out, const LaneMap& lm,
                                     std::size_t n_active) {
  F* const x = scratch_base<F>();
  F* const y = x + lanes_;
  F* const zr = y + lanes_;
  F* const flip = zr + lanes_;
  for (std::size_t k = 0; k < n_active; ++k) {
    detail::cordic_reduce(static_cast<F>(in[lm(k)]), &zr[k], &flip[k]);
    x[k] = F(detail::kCordicGainInv);
    y[k] = F(0);
  }
  F pow2 = F(1);
  for (int i = 0; i < detail::kCordicIters; ++i) {
    const F at = F(detail::kCordicAtan[i]);
    for (std::size_t k = 0; k < n_active; ++k) {
      const F xs = x[k] * pow2;
      const F ys = y[k] * pow2;
      const bool pos = zr[k] >= F(0);
      const F xn = pos ? x[k] - ys : x[k] + ys;
      const F yn = pos ? y[k] + xs : y[k] - xs;
      const F zn = pos ? zr[k] - at : zr[k] + at;
      x[k] = xn;
      y[k] = yn;
      zr[k] = zn;
    }
    pow2 = pow2 * F(0.5);
  }
  if (n.kind == OpKind::kSin) {
    for (std::size_t k = 0; k < n_active; ++k) {
      out[lm(k)] = static_cast<double>(y[k]);
    }
  } else {
    for (std::size_t k = 0; k < n_active; ++k) {
      out[lm(k)] = static_cast<double>(flip[k] * x[k]);
    }
  }
}

template <typename F, typename LaneMap>
void BatchedCgraMachine::run_pass(const LaneMap& lm, std::size_t n) {
  const Dfg& g = kernel_->dfg;
  for (NodeId id : topo_) {
    const Node& node = g.node(id);
    double* const out = row(id);
    const double* a =
        node.arity() > 0 ? operand_row(id, node.args[0]) : nullptr;
    const double* b =
        node.arity() > 1 ? operand_row(id, node.args[1]) : nullptr;
    const double* c =
        node.arity() > 2 ? operand_row(id, node.args[2]) : nullptr;
    switch (node.kind) {
      case OpKind::kConst: {
        const double q = quantise(node.constant);
        for (std::size_t k = 0; k < n; ++k) out[lm(k)] = q;
        break;
      }
      case OpKind::kParam: {
        const double* src =
            param_vals_.data() +
            static_cast<std::size_t>(
                param_slot_[static_cast<std::size_t>(id)]) *
                lanes_;
        for (std::size_t k = 0; k < n; ++k) out[lm(k)] = src[lm(k)];
        break;
      }
      case OpKind::kState: {
        const double* src =
            state_vals_.data() +
            static_cast<std::size_t>(
                state_slot_[static_cast<std::size_t>(id)]) *
                lanes_;
        for (std::size_t k = 0; k < n; ++k) out[lm(k)] = src[lm(k)];
        break;
      }
      case OpKind::kLoad: {
        a = operand_row(id, node.args[0]);
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          const DecodedAddress da = decode_address(a[l]);
          out[l] = quantise(bus_->read(l, da.region, da.offset));
        }
        break;
      }
      case OpKind::kStore: {
        a = operand_row(id, node.args[0]);
        b = operand_row(id, node.args[1]);
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          const DecodedAddress da = decode_address(a[l]);
          bus_->write(l, da.region, da.offset, b[l]);
          out[l] = b[l];
        }
        break;
      }
      case OpKind::kMove:
        a = operand_row(id, node.args[0]);
        for (std::size_t k = 0; k < n; ++k) out[lm(k)] = a[lm(k)];
        break;
#define CITL_BATCH_BIN(OP)                                       \
  for (std::size_t k = 0; k < n; ++k) {                          \
    const std::size_t l = lm(k);                                 \
    out[l] = static_cast<double>(static_cast<F>(a[l])            \
                                     OP static_cast<F>(b[l]));   \
  }                                                              \
  break
      case OpKind::kAdd: CITL_BATCH_BIN(+);
      case OpKind::kSub: CITL_BATCH_BIN(-);
      case OpKind::kMul: CITL_BATCH_BIN(*);
      case OpKind::kDiv: CITL_BATCH_BIN(/);
#undef CITL_BATCH_BIN
      case OpKind::kSqrt:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<double>(std::sqrt(static_cast<F>(a[l])));
        }
        break;
      case OpKind::kNeg:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<double>(-static_cast<F>(a[l]));
        }
        break;
      case OpKind::kAbs:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<double>(std::fabs(static_cast<F>(a[l])));
        }
        break;
      case OpKind::kMin:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<double>(
              std::fmin(static_cast<F>(a[l]), static_cast<F>(b[l])));
        }
        break;
      case OpKind::kMax:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<double>(
              std::fmax(static_cast<F>(a[l]), static_cast<F>(b[l])));
        }
        break;
      case OpKind::kFloor:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<double>(std::floor(static_cast<F>(a[l])));
        }
        break;
      case OpKind::kSin:
      case OpKind::kCos:
        eval_cordic<F>(node, a, out, lm, n);
        break;
      case OpKind::kCmpLt:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<F>(a[l]) < static_cast<F>(b[l]) ? 1.0 : 0.0;
        }
        break;
      case OpKind::kCmpLe:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<F>(a[l]) <= static_cast<F>(b[l]) ? 1.0 : 0.0;
        }
        break;
      case OpKind::kCmpEq:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<F>(a[l]) == static_cast<F>(b[l]) ? 1.0 : 0.0;
        }
        break;
      case OpKind::kSelect:
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = static_cast<F>(a[l]) != F(0)
                       ? static_cast<double>(static_cast<F>(b[l]))
                       : static_cast<double>(static_cast<F>(c[l]));
        }
        break;
      default:
        // Future operators fall back to the shared scalar semantics.
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t l = lm(k);
          out[l] = detail::eval_scalar<F>(node.kind, a != nullptr ? a[l] : 0.0,
                                          b != nullptr ? b[l] : 0.0,
                                          c != nullptr ? c[l] : 0.0);
        }
        break;
    }
  }
  commit(lm, n);
}

template <typename LaneMap>
void BatchedCgraMachine::commit(const LaneMap& lm, std::size_t n_active) {
  const Dfg& g = kernel_->dfg;
  // Pipeline registers latch this iteration's stage-0 values — only on the
  // lanes that actually ran; parked lanes keep last iteration's registers.
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.node(static_cast<NodeId>(i)).stage == 0) {
      const double* vr = values_.data() + i * lanes_;
      double* pr = pipe_regs_.data() + i * lanes_;
      for (std::size_t k = 0; k < n_active; ++k) {
        const std::size_t l = lm(k);
        pr[l] = vr[l];
      }
    }
  }
  // States take their update nodes' values, again lane-masked so externally
  // written states of parked lanes (displace(), handle writes) survive.
  const auto& states = g.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    const double* up =
        values_.data() + static_cast<std::size_t>(states[i].update) * lanes_;
    double* sv = state_vals_.data() + i * lanes_;
    for (std::size_t k = 0; k < n_active; ++k) {
      const std::size_t l = lm(k);
      sv[l] = up[l];
    }
  }
  commit_bookkeeping(lm, n_active);
}

/// The counter half of commit(). The native tier latches pipeline registers
/// and states inside the generated kernel (NativeCtx contract), so it skips
/// the data copies above and runs only this.
template <typename LaneMap>
void BatchedCgraMachine::commit_bookkeeping(const LaneMap& lm,
                                            std::size_t n_active) {
  for (std::size_t k = 0; k < n_active; ++k) ++lane_iterations_[lm(k)];
  ++iterations_;

  // One branch while the registry is disabled. Every instrument below would
  // individually early-out on the same flag, so gating them as a block
  // records exactly the same values — it only stops a disabled registry from
  // costing a dozen loads on every committed iteration (the native tier's
  // whole iteration is ~500 ns; this bookkeeping was ~10% of it).
  if (!obs::Registry::global().enabled()) return;
  obs_batched_->add();
  obs_lane_iters_->add(n_active);
  obs_lanes_active_->set(static_cast<double>(n_active));
  obs_iterations_->add(n_active);
  obs_cycles_->add(n_active * kernel_->schedule.length);
  attribution_counters_.add_iterations(n_active);
}

BatchedCgraMachine::~BatchedCgraMachine() = default;

unsigned BatchedCgraMachine::run_iteration_all_lanes() {
  obs_tier_iters_->add();
  switch (tier_) {
    case ExecTier::kNative: {
      NativeCtx ctx;
      ctx.values = values_.data();
      ctx.pipe_regs = pipe_regs_.data();
      ctx.state_vals = state_vals_.data();
      ctx.param_vals = param_vals_.data();
      ctx.bus = bus_;
      ctx.bus_read = &lane_bus_read;
      ctx.bus_write = &lane_bus_write;
      ctx.bus_read_at = &lane_bus_read_at;
      ctx.bus_write_at = &lane_bus_write_at;
      native_->run_dense(ctx);
      commit_bookkeeping(IdentityMap{}, lanes_);
      break;
    }
    case ExecTier::kBytecode: {
      BcContext ctx;
      ctx.values = values_.data();
      ctx.pipe_regs = pipe_regs_.data();
      ctx.state_vals = state_vals_.data();
      ctx.param_vals = param_vals_.data();
      ctx.lanes = lanes_;
      ctx.scratch_f = scratch_f_.data();
      ctx.scratch_d = scratch_d_.data();
      bytecode_->run_dense(precision_, ctx, *bus_);
      commit(IdentityMap{}, lanes_);
      break;
    }
    default:
      if (precision_ == Precision::kFloat32) {
        run_pass<float>(IdentityMap{}, lanes_);
      } else {
        run_pass<double>(IdentityMap{}, lanes_);
      }
      break;
  }
  return kernel_->schedule.length;
}

unsigned BatchedCgraMachine::run_iteration_lanes(const std::uint32_t* lane_ids,
                                                 std::size_t n_active) {
  if (n_active == 0) return kernel_->schedule.length;
  if (n_active == lanes_) return run_iteration_all_lanes();
  for (std::size_t k = 0; k < n_active; ++k) check_lane(lane_ids[k]);
  obs_tier_iters_->add();
  switch (tier_) {
    case ExecTier::kNative: {
      NativeCtx ctx;
      ctx.values = values_.data();
      ctx.pipe_regs = pipe_regs_.data();
      ctx.state_vals = state_vals_.data();
      ctx.param_vals = param_vals_.data();
      ctx.bus = bus_;
      ctx.bus_read = &lane_bus_read;
      ctx.bus_write = &lane_bus_write;
      ctx.bus_read_at = &lane_bus_read_at;
      ctx.bus_write_at = &lane_bus_write_at;
      native_->run_masked(ctx, lane_ids,
                          static_cast<std::uint32_t>(n_active));
      commit_bookkeeping(IndexMap{lane_ids}, n_active);
      break;
    }
    case ExecTier::kBytecode: {
      BcContext ctx;
      ctx.values = values_.data();
      ctx.pipe_regs = pipe_regs_.data();
      ctx.state_vals = state_vals_.data();
      ctx.param_vals = param_vals_.data();
      ctx.lanes = lanes_;
      ctx.scratch_f = scratch_f_.data();
      ctx.scratch_d = scratch_d_.data();
      bytecode_->run_masked(precision_, ctx, *bus_, lane_ids, n_active);
      commit(IndexMap{lane_ids}, n_active);
      break;
    }
    default:
      if (precision_ == Precision::kFloat32) {
        run_pass<float>(IndexMap{lane_ids}, n_active);
      } else {
        run_pass<double>(IndexMap{lane_ids}, n_active);
      }
      break;
  }
  return kernel_->schedule.length;
}

}  // namespace citl::cgra
