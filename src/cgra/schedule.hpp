// Resource-constrained list scheduler (§III-C: "a customised resource-
// constrained list scheduler") mapping dataflow nodes onto (PE, cycle) slots.
//
// Model:
//   * each PE executes at most one operation at a time and is busy for the
//     operation's full latency (the overlay's operators are not internally
//     pipelined),
//   * an operand produced on PE A and consumed on PE B travels over the
//     nearest-neighbour mesh, one hop per cycle, along a deterministic
//     L-shaped route; every intermediate PE forwards at most
//     `route_ports_per_pe` values per cycle,
//   * nodes may only be placed on PEs whose capability set contains the
//     node's operator class,
//   * pipeline edges (stage 0 -> stage 1, see ir.hpp) impose no precedence
//     within the iteration — the consumer reads a register written in the
//     previous iteration. They do constrain the iteration interval: the
//     register must be written before it is read one iteration later.
//
// The resulting schedule length (makespan, in CGRA clock ticks) is the
// initiation interval of the per-revolution loop and directly limits the
// maximum revolution frequency the simulator can sustain (§IV-B).
#pragma once

#include <string>
#include <vector>

#include "cgra/arch.hpp"
#include "cgra/ir.hpp"

namespace citl::cgra {

/// Where and when a node executes.
struct Placement {
  PeId pe;
  unsigned start = 0;   ///< first busy cycle
  unsigned finish = 0;  ///< start + latency; result available at `finish`
};

/// One interconnect hop of a routed operand (for occupancy accounting and
/// context generation).
struct RouteHop {
  NodeId value = kNoNode;  ///< the value being forwarded
  PeId pe;                 ///< PE whose route port forwards it
  unsigned cycle = 0;      ///< cycle in which the hop happens
};

struct Schedule {
  std::vector<Placement> placement;  ///< indexed by NodeId
  std::vector<RouteHop> hops;
  unsigned length = 0;  ///< makespan = initiation interval [CGRA ticks]

  /// Max revolution frequency this schedule sustains at `clock_hz`.
  [[nodiscard]] double max_revolution_frequency_hz(double clock_hz) const {
    return clock_hz / static_cast<double>(length);
  }
};

/// A kernel compiled for a concrete architecture.
struct CompiledKernel {
  Dfg dfg;
  CgraArch arch;
  Schedule schedule;
  /// Diagnostic name carried into error messages ("unknown parameter 'x' in
  /// kernel 'beam_sampled'"). Purely descriptive, never part of semantics.
  std::string name = "kernel";

  /// Per-PE context-memory listing (human-readable), the artefact that would
  /// be written into the bitstream's context memories.
  [[nodiscard]] std::string dump_contexts() const;
};

/// Schedules a validated DFG onto the architecture. Throws ConfigError when
/// the graph needs capabilities the architecture lacks.
[[nodiscard]] Schedule schedule_dfg(const Dfg& dfg, const CgraArch& arch);

/// Parse + lower + schedule. `name` labels the kernel in error messages.
[[nodiscard]] CompiledKernel compile_kernel(std::string_view source,
                                            const CgraArch& arch,
                                            std::string name = "kernel");

/// Aggregate quality metrics of a schedule.
struct ScheduleStats {
  unsigned length = 0;           ///< makespan / initiation interval
  unsigned critical_path = 0;    ///< latency lower bound of the DFG
  double cp_efficiency = 0.0;    ///< critical_path / length (1.0 = optimal)
  double pe_utilisation = 0.0;   ///< busy PE-cycles / (PEs · length)
  std::size_t route_hops = 0;    ///< interconnect forwards inserted
  unsigned busiest_pe_cycles = 0;
  PeId busiest_pe{};
};

/// Computes utilisation and bound metrics for a schedule.
[[nodiscard]] ScheduleStats schedule_stats(const Dfg& dfg,
                                           const CgraArch& arch,
                                           const Schedule& schedule);

/// Verifies a schedule against its DFG and architecture: precedence with
/// routing delays, capability and occupancy constraints, route-port limits,
/// and the cross-iteration constraint on pipeline edges. Throws
/// std::logic_error naming the first violation. Used by tests and asserted
/// after every compile.
void verify_schedule(const Dfg& dfg, const CgraArch& arch,
                     const Schedule& schedule);

}  // namespace citl::cgra
