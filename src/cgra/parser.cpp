#include "cgra/parser.hpp"

#include <array>

#include "cgra/lexer.hpp"
#include "core/error.hpp"

namespace citl::cgra {

namespace {

constexpr std::array<std::string_view, 8> kBuiltins = {
    "sensor_read", "sqrtf", "fabsf", "fminf", "fmaxf", "floorf",
    "sinf", "cosf"};

bool is_builtin(std::string_view name) {
  for (auto b : kBuiltins) {
    if (b == name) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : toks_(lex(source)) {}

  Program parse_program() {
    Program prog;
    while (peek().kind != TokKind::kEnd) {
      prog.stmts.push_back(parse_stmt());
    }
    return prog;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  [[noreturn]] void fail(const std::string& msg, const Token& at) const {
    throw CompileError(msg, at.line, at.column);
  }

  void expect_punct(std::string_view p) {
    if (!peek().is_punct(p)) {
      fail("expected '" + std::string(p) + "', got '" + peek().text + "'",
           peek());
    }
    take();
  }

  std::string expect_ident() {
    if (peek().kind != TokKind::kIdent) {
      fail("expected identifier, got '" + peek().text + "'", peek());
    }
    return take().text;
  }

  Stmt parse_stmt() {
    const Token& t = peek();
    if (t.kind != TokKind::kIdent) fail("expected statement", t);

    // pipeline_split();
    if (t.is_ident("pipeline_split")) {
      Stmt s;
      s.kind = Stmt::Kind::kPipelineSplit;
      s.line = t.line;
      s.column = t.column;
      take();
      expect_punct("(");
      expect_punct(")");
      expect_punct(";");
      return s;
    }
    // sensor_write(addr, value);
    if (t.is_ident("sensor_write")) {
      Stmt s;
      s.kind = Stmt::Kind::kCallStmt;
      s.name = "sensor_write";
      s.line = t.line;
      s.column = t.column;
      take();
      expect_punct("(");
      s.address = parse_expr();
      expect_punct(",");
      s.value = parse_expr();
      expect_punct(")");
      expect_punct(";");
      return s;
    }
    // Declarations: [state|param] float name [= expr];
    Stmt::Storage storage = Stmt::Storage::kLocal;
    std::size_t save = pos_;
    if (t.is_ident("state") || t.is_ident("param")) {
      storage = t.is_ident("state") ? Stmt::Storage::kState
                                    : Stmt::Storage::kParam;
      take();
    }
    if (peek().is_ident("float")) {
      Stmt s;
      s.kind = Stmt::Kind::kDecl;
      s.storage = storage;
      s.line = peek().line;
      s.column = peek().column;
      take();
      s.name = expect_ident();
      if (peek().is_punct("=")) {
        take();
        s.value = parse_expr();
      }
      expect_punct(";");
      return s;
    }
    if (storage != Stmt::Storage::kLocal) {
      fail("'state'/'param' must be followed by 'float'", peek());
    }
    pos_ = save;

    // Assignment: name = expr;
    Stmt s;
    s.kind = Stmt::Kind::kAssign;
    s.line = t.line;
    s.column = t.column;
    s.name = expect_ident();
    expect_punct("=");
    s.value = parse_expr();
    expect_punct(";");
    return s;
  }

  ExprPtr make(Expr::Kind kind, const Token& at) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = at.line;
    e->column = at.column;
    return e;
  }

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_comparison();
    if (!peek().is_punct("?")) return cond;
    const Token& q = peek();
    take();
    ExprPtr then_e = parse_expr();
    expect_punct(":");
    ExprPtr else_e = parse_expr();
    ExprPtr e = make(Expr::Kind::kTernary, q);
    e->args.push_back(std::move(cond));
    e->args.push_back(std::move(then_e));
    e->args.push_back(std::move(else_e));
    return e;
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    const Token& t = peek();
    if (t.is_punct("<") || t.is_punct("<=") || t.is_punct(">") ||
        t.is_punct(">=") || t.is_punct("==") || t.is_punct("!=")) {
      take();
      ExprPtr rhs = parse_additive();
      ExprPtr e = make(Expr::Kind::kBinary, t);
      e->name = t.text;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      return e;
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (peek().is_punct("+") || peek().is_punct("-")) {
      const Token t = take();
      ExprPtr rhs = parse_multiplicative();
      ExprPtr e = make(Expr::Kind::kBinary, t);
      e->name = t.text;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (peek().is_punct("*") || peek().is_punct("/")) {
      const Token t = take();
      ExprPtr rhs = parse_unary();
      ExprPtr e = make(Expr::Kind::kBinary, t);
      e->name = t.text;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().is_punct("-")) {
      const Token t = take();
      ExprPtr inner = parse_unary();
      ExprPtr e = make(Expr::Kind::kUnary, t);
      e->name = "-";
      e->args.push_back(std::move(inner));
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.kind == TokKind::kNumber) {
      ExprPtr e = make(Expr::Kind::kNumber, t);
      e->number = t.number;
      take();
      return e;
    }
    if (t.is_punct("(")) {
      take();
      ExprPtr inner = parse_expr();
      expect_punct(")");
      return inner;
    }
    if (t.kind == TokKind::kIdent) {
      if (is_builtin(t.text)) {
        ExprPtr e = make(Expr::Kind::kCall, t);
        e->name = t.text;
        take();
        expect_punct("(");
        if (!peek().is_punct(")")) {
          e->args.push_back(parse_expr());
          while (peek().is_punct(",")) {
            take();
            e->args.push_back(parse_expr());
          }
        }
        expect_punct(")");
        return e;
      }
      if (t.is_ident("sensor_write")) {
        fail("sensor_write is a statement, not an expression", t);
      }
      ExprPtr e = make(Expr::Kind::kVar, t);
      e->name = t.text;
      take();
      return e;
    }
    fail("expected expression, got '" + t.text + "'", t);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  Parser p(source);
  return p.parse_program();
}

}  // namespace citl::cgra
