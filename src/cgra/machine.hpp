// CGRA machine: executes a compiled kernel.
//
// Two execution modes with identical results (a tested invariant):
//   * functional  — evaluates the dataflow graph in topological order; fast,
//                   used for long closed-loop runs,
//   * cycle-accurate — walks the schedule cycle by cycle, issuing each
//                   operation on its PE at its context slot and committing
//                   results at op latency; IO hits the bus at the scheduled
//                   cycle. This mode is the software twin of the overlay and
//                   provides the deterministic timing the paper relies on.
//
// Arithmetic is performed in IEEE binary32 by default — the overlay's PEs
// are single-precision floating-point operators — with an optional binary64
// mode for precision studies.
#pragma once

#include <string>
#include <vector>

#include "cgra/schedule.hpp"
#include "cgra/sensor.hpp"

namespace citl::cgra {

enum class Precision { kFloat32, kFloat64 };

class CgraMachine {
 public:
  /// The machine keeps a reference to the kernel and the bus; both must
  /// outlive it.
  CgraMachine(const CompiledKernel& kernel, SensorBus& bus,
              Precision precision = Precision::kFloat32);

  /// Resets states to their initial values and clears pipeline registers.
  void reset();

  /// Sets a runtime parameter (by kernel-source name).
  void set_param(const std::string& name, double value);
  [[nodiscard]] double param(const std::string& name) const;

  /// Reads / overrides a loop-carried state (by kernel-source name).
  [[nodiscard]] double state(const std::string& name) const;
  void set_state(const std::string& name, double value);

  /// Runs one loop iteration functionally.
  void run_iteration();

  /// Runs one loop iteration cycle-by-cycle; returns the number of CGRA
  /// clock ticks consumed (== schedule length).
  unsigned run_iteration_cycle_accurate();

  /// Value computed for `node` in the most recent iteration.
  [[nodiscard]] double value(NodeId node) const;

  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] const CompiledKernel& kernel() const noexcept {
    return *kernel_;
  }

 private:
  [[nodiscard]] double eval(const Node& n, double a, double b, double c);
  [[nodiscard]] double operand(NodeId consumer, NodeId producer) const;
  void commit_iteration();
  [[nodiscard]] double quantise(double v) const noexcept;

  const CompiledKernel* kernel_;
  SensorBus* bus_;
  Precision precision_;
  std::vector<double> values_;      ///< current-iteration node results
  std::vector<double> pipe_regs_;   ///< previous-iteration stage-0 results
  std::vector<double> state_vals_;  ///< current state values (by state index)
  std::vector<double> param_vals_;  ///< current param values (by param index)
  std::vector<NodeId> topo_;
  std::uint64_t iterations_ = 0;
};

}  // namespace citl::cgra
