// CGRA machine: executes a compiled kernel.
//
// Two execution modes with identical results (a tested invariant):
//   * functional  — evaluates the dataflow graph in topological order; fast,
//                   used for long closed-loop runs,
//   * cycle-accurate — walks the schedule cycle by cycle, issuing each
//                   operation on its PE at its context slot and committing
//                   results at op latency; IO hits the bus at the scheduled
//                   cycle. This mode is the software twin of the overlay and
//                   provides the deterministic timing the paper relies on.
//
// Arithmetic is performed in IEEE binary32 by default — the overlay's PEs
// are single-precision floating-point operators — with an optional binary64
// mode for precision studies.
//
// Model-facing API: parameters and loop-carried states are addressed through
// ParamHandle / StateHandle, resolved once from the kernel. The string
// overloads resolve a handle and delegate; they exist for interactive use
// (console, tests) and must stay off per-revolution hot paths.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cgra/attribution.hpp"
#include "cgra/exec_tier.hpp"
#include "cgra/schedule.hpp"
#include "cgra/sensor.hpp"

namespace citl::cgra {

class BytecodeProgram;  // bytecode.hpp
class NativeKernel;     // codegen.hpp

enum class Precision { kFloat32, kFloat64 };

/// Index of a runtime parameter within its kernel's parameter table.
/// Resolved once (param_handle / BeamModel::param_handle); valid only for
/// machines executing the kernel it was resolved from.
struct ParamHandle {
  int index = -1;
  [[nodiscard]] constexpr bool valid() const noexcept { return index >= 0; }
};

/// Index of a loop-carried state within its kernel's state table.
struct StateHandle {
  int index = -1;
  [[nodiscard]] constexpr bool valid() const noexcept { return index >= 0; }
};

/// Resolves `name` against the kernel's parameter table. Throws citl::Error
/// (ConfigError) naming the kernel and the offending key if absent.
[[nodiscard]] ParamHandle param_handle(const CompiledKernel& kernel,
                                       std::string_view name);
[[nodiscard]] StateHandle state_handle(const CompiledKernel& kernel,
                                       std::string_view name);
/// Non-throwing lookups: an invalid handle means "not present".
[[nodiscard]] ParamHandle find_param(const CompiledKernel& kernel,
                                     std::string_view name) noexcept;
[[nodiscard]] StateHandle find_state(const CompiledKernel& kernel,
                                     std::string_view name) noexcept;

namespace detail {
/// Shared ConfigError construction for every kernel-executing machine, so a
/// stale handle or an out-of-range lane reports identically (kernel + key
/// naming) whether CgraMachine or BatchedCgraMachine raised it — and the
/// string-keyed wrappers, which resolve through param_handle/state_handle,
/// report identically to a direct handle lookup.
[[noreturn]] void throw_invalid_handle(const CompiledKernel& kernel,
                                       const char* what);
[[noreturn]] void throw_lane_out_of_range(const CompiledKernel& kernel,
                                          std::size_t lane, std::size_t lanes);
}  // namespace detail

/// Common interface of the kernel-executing machines: CgraMachine is the
/// single-lane implementation, BatchedCgraMachine (batch.hpp) runs N lanes
/// of the same kernel in lockstep. hil::Framework, hil::TurnLoop and the
/// sweep engine drive models through this interface so a loop body is
/// agnostic about whether it owns lane 0 of a batch or a whole machine.
class BeamModel {
 public:
  virtual ~BeamModel() = default;

  [[nodiscard]] virtual const CompiledKernel& kernel() const noexcept = 0;
  /// Number of independent lanes (scenarios) this model executes per
  /// iteration. CgraMachine: always 1.
  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;

  /// The execution tier this model actually runs (kAuto and the no-compiler
  /// fallback are resolved at construction — never kAuto here). All tiers
  /// are bit-identical; this is for reporting and tests.
  [[nodiscard]] virtual ExecTier exec_tier() const noexcept {
    return ExecTier::kInterpreter;
  }

  /// Resets every lane: states to initial values, params to defaults,
  /// pipeline registers cleared.
  virtual void reset() = 0;

  /// Per-lane parameter / state access. Throws citl::Error for an invalid
  /// handle or an out-of-range lane. Values are quantised to the machine's
  /// working precision on write, exactly like the hardware register file.
  virtual void set_param(ParamHandle h, double value, std::size_t lane) = 0;
  [[nodiscard]] virtual double param(ParamHandle h,
                                     std::size_t lane) const = 0;
  virtual void set_state(StateHandle h, double value, std::size_t lane) = 0;
  [[nodiscard]] virtual double state(StateHandle h,
                                     std::size_t lane) const = 0;

  /// Runs one kernel iteration on every lane (functionally); returns the
  /// CGRA clock ticks one iteration occupies (== schedule length — identical
  /// in functional and cycle-accurate execution, a tested invariant).
  virtual unsigned run_iteration_all_lanes() = 0;

  // --- checkpoint hooks (hil::Supervisor guard layer) ---------------------
  /// Number of loop-carried states — the snapshot image length.
  [[nodiscard]] std::size_t state_count() const noexcept {
    return kernel().dfg.states().size();
  }
  /// Copies one lane's loop-carried state values (by state index) into
  /// `out[0 .. state_count())`. Pure read: never perturbs execution.
  virtual void snapshot_states(std::size_t lane, double* out) const = 0;
  /// Restores one lane's states from a snapshot_states() image, bit-exactly.
  /// Pipeline registers are not part of the image; after a rollback they
  /// still hold post-fault values for one iteration.
  virtual void restore_states(std::size_t lane, const double* values) = 0;

  /// Cross-iteration pipeline registers: the stage-0 node values latched by
  /// the previous iteration, read by the next iteration's stage-1 operations
  /// (one slot per DFG node). Loop-carried state therefore = states + pipe
  /// regs; the oracle's checkpoints snapshot both so a rollback replays the
  /// trajectory bit-exactly even on pipelined kernels. The Supervisor's
  /// state-only image stays intentionally smaller (a rollback there accepts
  /// one iteration of post-fault pipe values).
  [[nodiscard]] virtual std::size_t pipe_reg_count() const noexcept {
    return kernel().dfg.size();
  }
  /// Copies one lane's pipeline registers into `out[0 .. pipe_reg_count())`.
  virtual void snapshot_pipe_regs(std::size_t lane, double* out) const = 0;
  /// Restores one lane's pipeline registers, bit-exactly.
  virtual void restore_pipe_regs(std::size_t lane, const double* values) = 0;

  // Handle resolution against this model's kernel.
  [[nodiscard]] ParamHandle param_handle(std::string_view name) const {
    return cgra::param_handle(kernel(), name);
  }
  [[nodiscard]] StateHandle state_handle(std::string_view name) const {
    return cgra::state_handle(kernel(), name);
  }
};

class CgraMachine final : public BeamModel {
 public:
  /// The machine keeps a reference to the kernel and the bus; both must
  /// outlive it. `tier` picks the execution back end for the functional
  /// path (exec_tier.hpp); the cycle-accurate path always interprets.
  CgraMachine(const CompiledKernel& kernel, SensorBus& bus,
              Precision precision = Precision::kFloat32,
              ExecTier tier = ExecTier::kInterpreter);
  ~CgraMachine() override;

  /// Resets states to their initial values and clears pipeline registers.
  void reset() override;

  // --- handle-based access (the hot-path API) -----------------------------
  void set_param(ParamHandle h, double value, std::size_t lane = 0) override;
  [[nodiscard]] double param(ParamHandle h,
                             std::size_t lane = 0) const override;
  void set_state(StateHandle h, double value, std::size_t lane = 0) override;
  [[nodiscard]] double state(StateHandle h,
                             std::size_t lane = 0) const override;

  void snapshot_states(std::size_t lane, double* out) const override;
  void restore_states(std::size_t lane, const double* values) override;
  void snapshot_pipe_regs(std::size_t lane, double* out) const override;
  void restore_pipe_regs(std::size_t lane, const double* values) override;

  // --- string-keyed access (deprecated wrappers) --------------------------
  // Resolve a handle per call and delegate. Deprecated: use
  // param_handle()/state_handle() on hot paths, or the citl::api by-name
  // helpers (api/api.hpp) for interactive/RPC access — they carry the same
  // per-call-resolution semantics without pinning callers to CgraMachine.
  [[deprecated("use param_handle()/set_param(handle,...) or "
               "api::set_kernel_param")]]
  void set_param(const std::string& name, double value);
  [[deprecated("use param_handle()/param(handle,...) or api::kernel_param")]]
  [[nodiscard]] double param(const std::string& name) const;
  [[deprecated("use state_handle()/state(handle,...) or api::kernel_state")]]
  [[nodiscard]] double state(const std::string& name) const;
  [[deprecated("use state_handle()/set_state(handle,...) or "
               "api::set_kernel_state")]]
  void set_state(const std::string& name, double value);

  /// Runs one loop iteration functionally.
  void run_iteration();

  unsigned run_iteration_all_lanes() override {
    run_iteration();
    return kernel_->schedule.length;
  }

  /// Runs one loop iteration cycle-by-cycle; returns the number of CGRA
  /// clock ticks consumed (== schedule length).
  unsigned run_iteration_cycle_accurate();

  /// Value computed for `node` in the most recent iteration.
  [[nodiscard]] double value(NodeId node) const;

  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] const CompiledKernel& kernel() const noexcept override {
    return *kernel_;
  }
  [[nodiscard]] std::size_t lanes() const noexcept override { return 1; }
  [[nodiscard]] ExecTier exec_tier() const noexcept override { return tier_; }

 private:
  void run_iteration_interpreted();
  [[nodiscard]] double eval(const Node& n, double a, double b, double c);
  [[nodiscard]] double operand(NodeId consumer, NodeId producer) const;
  void commit_iteration();
  [[nodiscard]] double quantise(double v) const noexcept;
  void check_lane(std::size_t lane) const;

  const CompiledKernel* kernel_;
  SensorBus* bus_;
  Precision precision_;
  std::vector<double> values_;      ///< current-iteration node results
  std::vector<double> pipe_regs_;   ///< previous-iteration stage-0 results
  std::vector<double> state_vals_;  ///< current state values (by state index)
  std::vector<double> param_vals_;  ///< current param values (by param index)
  std::vector<NodeId> topo_;
  std::vector<int> param_slot_;     ///< node id -> param index (or -1)
  std::vector<int> state_slot_;     ///< node id -> state index (or -1)
  std::uint64_t iterations_ = 0;
  AttributionCounters attribution_counters_;  ///< per-op cycle metrics
  ExecTier tier_ = ExecTier::kInterpreter;    ///< resolved (never kAuto)
  std::unique_ptr<BytecodeProgram> bytecode_;
  std::shared_ptr<const NativeKernel> native_;
  std::array<float, 4> scratch_f_{};   ///< single-lane CORDIC scratch
  std::array<double, 4> scratch_d_{};
};

}  // namespace citl::cgra
