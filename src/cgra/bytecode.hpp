// Bytecode tier: a compiled kernel lowered to a flat instruction stream.
//
// The interpreters re-derive everything per node per iteration: operand
// resolution walks the Node table, pipeline edges are re-tested with
// is_pipeline_edge(), param/state sources scan slot tables, and each node
// pays a switch on OpKind. Lowering runs that analysis exactly once: each
// instruction carries its opcode, its destination row offset and fully
// resolved operand row offsets (values vs pipeline-register bank, param and
// state slots pre-multiplied by the lane count), so execution is a computed
// goto over a dense array. Always available — no toolchain dependency — and
// bit-identical to the interpreters by construction: every handler performs
// the same arithmetic, in the same order, as cgra/exec.hpp and
// BatchedCgraMachine::run_pass (the Codegen* tests pin it per kernel).
//
// The program evaluates node rows only; latching pipeline registers and
// states (and the obs bookkeeping) stays in the owning machine's commit, so
// checkpoints and counters are tier-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cgra/machine.hpp"
#include "cgra/schedule.hpp"
#include "cgra/sensor.hpp"

namespace citl::cgra {

class LaneSensorBus;  // batch.hpp

/// Dense opcode set of the VM (arithmetic ops mirror OpKind; sources and IO
/// get their own entry points so no handler re-tests the node class).
enum class BcOp : std::uint8_t {
  kConst = 0,
  kParam,
  kState,
  kLoad,
  kStore,
  kMove,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kSqrt,
  kNeg,
  kAbs,
  kMin,
  kMax,
  kFloor,
  kSin,
  kCos,
  kCmpLt,
  kCmpLe,
  kCmpEq,
  kSelect,
  kHalt,
};

/// Pointers into the owning machine's execution state for one pass. `values`
/// is written (one row per node); the other banks are read-only during the
/// pass — the machine's commit latches pipes and states afterwards.
struct BcContext {
  double* values = nullptr;            ///< [node * lanes + lane]
  const double* pipe_regs = nullptr;   ///< [node * lanes + lane]
  const double* state_vals = nullptr;  ///< [state index * lanes + lane]
  const double* param_vals = nullptr;  ///< [param index * lanes + lane]
  std::size_t lanes = 0;
  float* scratch_f = nullptr;          ///< >= 4 * lanes (CORDIC, binary32)
  double* scratch_d = nullptr;         ///< >= 4 * lanes (CORDIC, binary64)
};

class BytecodeProgram {
 public:
  struct Instr {
    BcOp op = BcOp::kHalt;
    std::uint8_t a_pipe = 0;  ///< operand A reads the pipe bank (else values)
    std::uint8_t b_pipe = 0;
    std::uint8_t c_pipe = 0;
    std::uint32_t dst = 0;    ///< destination row offset (node * lanes)
    std::uint32_t a = 0;      ///< operand row offsets (bank-relative)
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    double konst = 0.0;       ///< kConst literal (raw; quantised at run time)
  };

  /// Lowers `kernel` for machines with `lanes` lanes (row offsets are baked,
  /// so a program is specific to its machine's width).
  BytecodeProgram(const CompiledKernel& kernel, std::size_t lanes);

  /// One functional pass over every lane (BatchedCgraMachine layout).
  void run_dense(Precision precision, const BcContext& ctx,
                 LaneSensorBus& bus) const;
  /// One functional pass over `lane_ids[0 .. n_active)` (ascending).
  void run_masked(Precision precision, const BcContext& ctx,
                  LaneSensorBus& bus, const std::uint32_t* lane_ids,
                  std::size_t n_active) const;
  /// One functional pass of a single-lane machine (CgraMachine layout; the
  /// lane-less SensorBus).
  void run_serial(Precision precision, const BcContext& ctx,
                  SensorBus& bus) const;

  [[nodiscard]] std::size_t instruction_count() const noexcept {
    return instrs_.size();  // includes the trailing kHalt
  }
  [[nodiscard]] const std::vector<Instr>& instructions() const noexcept {
    return instrs_;
  }

 private:
  std::vector<Instr> instrs_;
};

}  // namespace citl::cgra
