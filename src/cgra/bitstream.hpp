// Bitstream-style serialisation of compiled kernels.
//
// The paper's flow inserts freshly scheduled context memories "into the
// final FPGA bitstream without requiring a new synthesis" (§III-C). The
// analogue here: a compiled kernel (architecture + dataflow graph +
// schedule) serialises to a self-contained text artefact that can be stored,
// diffed, shipped, and loaded back without recompiling from C source.
//
// The format is line-oriented and versioned:
//
//   citl-bitstream 1
//   arch <rows> <cols> <route_ports> <clock_hz>
//   lat <alu> <mul> <div> <sqrt> <load> <store> <route> <source> <cordic>
//   pe <idx> <alu> <mul> <divsqrt> <cordic> <mem>
//   node <id> <op> <stage> <a0> <a1> <a2> <const> <name>
//   order <id> <dep>
//   state <name> <node> <update> <initial>
//   param <name> <node> <default>
//   place <id> <row> <col> <start> <finish>
//   hop <value> <row> <col> <cycle>
//   length <ticks>
#pragma once

#include <iosfwd>
#include <string>

#include "cgra/schedule.hpp"

namespace citl::cgra {

/// Serialises a compiled kernel. The result loads back bit-identically.
[[nodiscard]] std::string save_bitstream(const CompiledKernel& kernel);

/// Parses a bitstream produced by save_bitstream. Validates the DFG and the
/// schedule (via verify_schedule) before returning; throws ConfigError on
/// malformed input or verification failure — a corrupted artefact never
/// reaches the machine.
[[nodiscard]] CompiledKernel load_bitstream(const std::string& text);

/// File convenience wrappers.
void save_bitstream_file(const std::string& path,
                         const CompiledKernel& kernel);
[[nodiscard]] CompiledKernel load_bitstream_file(const std::string& path);

}  // namespace citl::cgra
