#include "cgra/bitstream.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "core/error.hpp"

namespace citl::cgra {

namespace {

constexpr int kVersion = 1;

const std::map<std::string, OpKind>& op_by_name() {
  static const std::map<std::string, OpKind> table = [] {
    std::map<std::string, OpKind> m;
    for (int k = 0; k <= static_cast<int>(OpKind::kMove); ++k) {
      const auto kind = static_cast<OpKind>(k);
      m[std::string(op_name(kind))] = kind;
    }
    return m;
  }();
  return table;
}

[[noreturn]] void bad(const std::string& what) {
  throw ConfigError("bitstream: " + what);
}

std::string name_or_dash(const std::string& s) { return s.empty() ? "-" : s; }
std::string dash_to_name(const std::string& s) { return s == "-" ? "" : s; }

}  // namespace

std::string save_bitstream(const CompiledKernel& kernel) {
  const CgraArch& a = kernel.arch;
  const Dfg& g = kernel.dfg;
  const Schedule& s = kernel.schedule;
  CITL_CHECK_MSG(s.placement.size() == g.size(),
                 "kernel not scheduled; nothing to save");

  std::ostringstream os;
  os << std::setprecision(17);
  os << "citl-bitstream " << kVersion << '\n';
  os << "arch " << a.rows << ' ' << a.cols << ' ' << a.route_ports_per_pe
     << ' ' << a.clock_hz << '\n';
  const LatencyTable& lt = a.latency;
  os << "lat " << lt.alu << ' ' << lt.mul << ' ' << lt.div << ' ' << lt.sqrt
     << ' ' << lt.load << ' ' << lt.store << ' ' << lt.route_hop << ' '
     << lt.source << ' ' << lt.cordic << '\n';
  for (int i = 0; i < a.pe_count(); ++i) {
    const PeCapabilities& c = a.pes[static_cast<std::size_t>(i)];
    os << "pe " << i << ' ' << c.alu << ' ' << c.mul << ' ' << c.divsqrt
       << ' ' << c.cordic << ' ' << c.mem << '\n';
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Node& n = g.node(static_cast<NodeId>(i));
    os << "node " << i << ' ' << op_name(n.kind) << ' ' << n.stage << ' '
       << n.args[0] << ' ' << n.args[1] << ' ' << n.args[2] << ' '
       << n.constant << ' ' << name_or_dash(n.name) << '\n';
    for (NodeId d : n.order_deps) {
      os << "order " << i << ' ' << d << '\n';
    }
  }
  for (const StateVar& sv : g.states()) {
    os << "state " << sv.name << ' ' << sv.node << ' ' << sv.update << ' '
       << sv.initial << '\n';
  }
  for (const ParamVar& pv : g.params()) {
    os << "param " << pv.name << ' ' << pv.node << ' ' << pv.default_value
       << '\n';
  }
  for (std::size_t i = 0; i < s.placement.size(); ++i) {
    const Placement& p = s.placement[i];
    os << "place " << i << ' ' << p.pe.row << ' ' << p.pe.col << ' '
       << p.start << ' ' << p.finish << '\n';
  }
  for (const RouteHop& h : s.hops) {
    os << "hop " << h.value << ' ' << h.pe.row << ' ' << h.pe.col << ' '
       << h.cycle << '\n';
  }
  os << "length " << s.length << '\n';
  return os.str();
}

CompiledKernel load_bitstream(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  CompiledKernel k;
  std::vector<Node> nodes;
  std::vector<StateVar> states;
  std::vector<ParamVar> params;
  std::vector<NodeId> stores;
  bool have_header = false, have_arch = false, have_length = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "citl-bitstream") {
      int version = 0;
      ls >> version;
      if (version != kVersion) bad("unsupported version");
      have_header = true;
    } else if (tag == "arch") {
      ls >> k.arch.rows >> k.arch.cols >> k.arch.route_ports_per_pe >>
          k.arch.clock_hz;
      if (!ls || k.arch.rows <= 0 || k.arch.cols <= 0) bad("malformed arch");
      k.arch.pes.assign(static_cast<std::size_t>(k.arch.pe_count()),
                        PeCapabilities{});
      have_arch = true;
    } else if (tag == "lat") {
      LatencyTable& lt = k.arch.latency;
      ls >> lt.alu >> lt.mul >> lt.div >> lt.sqrt >> lt.load >> lt.store >>
          lt.route_hop >> lt.source >> lt.cordic;
      if (!ls) bad("malformed lat");
    } else if (tag == "pe") {
      if (!have_arch) bad("pe before arch");
      int idx = 0;
      PeCapabilities c;
      ls >> idx >> c.alu >> c.mul >> c.divsqrt >> c.cordic >> c.mem;
      if (!ls || idx < 0 || idx >= k.arch.pe_count()) bad("malformed pe");
      k.arch.pes[static_cast<std::size_t>(idx)] = c;
    } else if (tag == "node") {
      std::size_t id = 0;
      std::string op, name;
      Node n;
      ls >> id >> op >> n.stage >> n.args[0] >> n.args[1] >> n.args[2] >>
          n.constant >> name;
      if (!ls) bad("malformed node");
      const auto it = op_by_name().find(op);
      if (it == op_by_name().end()) bad("unknown op '" + op + "'");
      n.kind = it->second;
      n.name = dash_to_name(name);
      if (id != nodes.size()) bad("nodes out of order");
      nodes.push_back(std::move(n));
      if (nodes.back().kind == OpKind::kStore) {
        stores.push_back(static_cast<NodeId>(id));
      }
    } else if (tag == "order") {
      std::size_t id = 0;
      NodeId dep = kNoNode;
      ls >> id >> dep;
      if (!ls || id >= nodes.size()) bad("malformed order");
      nodes[id].order_deps.push_back(dep);
    } else if (tag == "state") {
      StateVar sv;
      ls >> sv.name >> sv.node >> sv.update >> sv.initial;
      if (!ls) bad("malformed state");
      states.push_back(std::move(sv));
    } else if (tag == "param") {
      ParamVar pv;
      ls >> pv.name >> pv.node >> pv.default_value;
      if (!ls) bad("malformed param");
      params.push_back(std::move(pv));
    } else if (tag == "place") {
      std::size_t id = 0;
      Placement p;
      ls >> id >> p.pe.row >> p.pe.col >> p.start >> p.finish;
      if (!ls) bad("malformed place");
      if (id != k.schedule.placement.size()) bad("placements out of order");
      k.schedule.placement.push_back(p);
    } else if (tag == "hop") {
      RouteHop h;
      ls >> h.value >> h.pe.row >> h.pe.col >> h.cycle;
      if (!ls) bad("malformed hop");
      k.schedule.hops.push_back(h);
    } else if (tag == "length") {
      ls >> k.schedule.length;
      if (!ls) bad("malformed length");
      have_length = true;
    } else {
      bad("unknown record '" + tag + "'");
    }
  }
  if (!have_header) bad("missing header");
  if (!have_arch) bad("missing arch");
  if (!have_length) bad("missing length");

  try {
    k.arch.validate();
    k.dfg = Dfg::restore(std::move(nodes), std::move(states),
                         std::move(params), std::move(stores));
    verify_schedule(k.dfg, k.arch, k.schedule);
  } catch (const std::logic_error& e) {
    bad(std::string("verification failed: ") + e.what());
  }
  return k;
}

void save_bitstream_file(const std::string& path,
                         const CompiledKernel& kernel) {
  std::ofstream f(path);
  if (!f) throw ConfigError("cannot open for writing: " + path);
  f << save_bitstream(kernel);
  if (!f) throw ConfigError("write failed: " + path);
}

CompiledKernel load_bitstream_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ConfigError("cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return load_bitstream(ss.str());
}

}  // namespace citl::cgra
