#include "cgra/machine.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace citl::cgra {

namespace {

/// CORDIC rotation (circular mode), the algorithm the overlay's trigonometric
/// PEs implement (§III-C). 28 iterations bring the angular resolution below
/// binary32 epsilon; the gain constant is pre-divided out of the seed.
template <typename F>
void cordic_rotate(F angle, F* out_cos, F* out_sin) {
  constexpr int kIters = 28;
  static const double kAtan[kIters] = {
      0.7853981633974483,    0.4636476090008061,    0.24497866312686414,
      0.12435499454676144,   0.06241880999595735,   0.031239833430268277,
      0.015623728620476831,  0.007812341060101111,  0.0039062301319669718,
      0.0019531225164788188, 0.0009765621895593195, 0.0004882812111948983,
      0.00024414062014936177, 0.00012207031189367021, 6.103515617420877e-05,
      3.0517578115526096e-05, 1.5258789061315762e-05, 7.62939453110197e-06,
      3.814697265606496e-06,  1.907348632810187e-06,  9.536743164059608e-07,
      4.7683715820308884e-07, 2.3841857910155797e-07, 1.1920928955078068e-07,
      5.960464477539055e-08,  2.9802322387695303e-08, 1.4901161193847655e-08,
      7.450580596923828e-09};
  constexpr double kGainInv = 0.6072529350088813;

  // Reduce to (-pi, pi], then to [-pi/2, pi/2] with a sign flip.
  double z = static_cast<double>(angle);
  z = std::remainder(z, 2.0 * 3.14159265358979323846);
  F flip = F(1);
  if (z > 1.5707963267948966) {
    z = 3.14159265358979323846 - z;
    flip = F(-1);
  } else if (z < -1.5707963267948966) {
    z = -3.14159265358979323846 - z;
    flip = F(-1);
  }
  F x = F(kGainInv);
  F y = F(0);
  F zr = F(z);
  F pow2 = F(1);
  for (int i = 0; i < kIters; ++i) {
    const F xs = x * pow2;  // x * 2^-i computed via running scale
    const F ys = y * pow2;
    if (zr >= F(0)) {
      const F xn = x - ys;
      y = y + xs;
      x = xn;
      zr = zr - F(kAtan[i]);
    } else {
      const F xn = x + ys;
      y = y - xs;
      x = xn;
      zr = zr + F(kAtan[i]);
    }
    pow2 = pow2 * F(0.5);
  }
  *out_cos = flip * x;
  // sin is odd under the flip about ±pi/2? No: sin(pi - z) = sin(z), so the
  // y component keeps its sign when reducing across the vertical axis.
  *out_sin = y;
}

}  // namespace

CgraMachine::CgraMachine(const CompiledKernel& kernel, SensorBus& bus,
                         Precision precision)
    : kernel_(&kernel), bus_(&bus), precision_(precision) {
  values_.assign(kernel.dfg.size(), 0.0);
  pipe_regs_.assign(kernel.dfg.size(), 0.0);
  topo_ = kernel.dfg.topo_order();
  reset();
}

void CgraMachine::reset() {
  const Dfg& g = kernel_->dfg;
  state_vals_.clear();
  for (const auto& s : g.states()) state_vals_.push_back(s.initial);
  param_vals_.clear();
  for (const auto& p : g.params()) param_vals_.push_back(p.default_value);
  std::fill(values_.begin(), values_.end(), 0.0);
  std::fill(pipe_regs_.begin(), pipe_regs_.end(), 0.0);
  iterations_ = 0;
}

void CgraMachine::set_param(const std::string& name, double value) {
  const auto& params = kernel_->dfg.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) {
      param_vals_[i] = quantise(value);
      return;
    }
  }
  throw ConfigError("unknown kernel parameter: " + name);
}

double CgraMachine::param(const std::string& name) const {
  const auto& params = kernel_->dfg.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return param_vals_[i];
  }
  throw ConfigError("unknown kernel parameter: " + name);
}

double CgraMachine::state(const std::string& name) const {
  const auto& states = kernel_->dfg.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].name == name) return state_vals_[i];
  }
  throw ConfigError("unknown kernel state: " + name);
}

void CgraMachine::set_state(const std::string& name, double value) {
  const auto& states = kernel_->dfg.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].name == name) {
      state_vals_[i] = quantise(value);
      return;
    }
  }
  throw ConfigError("unknown kernel state: " + name);
}

double CgraMachine::value(NodeId node) const {
  CITL_CHECK(node >= 0 && static_cast<std::size_t>(node) < values_.size());
  return values_[static_cast<std::size_t>(node)];
}

double CgraMachine::quantise(double v) const noexcept {
  return precision_ == Precision::kFloat32
             ? static_cast<double>(static_cast<float>(v))
             : v;
}

double CgraMachine::operand(NodeId consumer, NodeId producer) const {
  // Pipeline edges read the register written in the previous iteration.
  if (kernel_->dfg.is_pipeline_edge(producer, consumer)) {
    return pipe_regs_[static_cast<std::size_t>(producer)];
  }
  return values_[static_cast<std::size_t>(producer)];
}

double CgraMachine::eval(const Node& n, double a, double b, double c) {
  if (precision_ == Precision::kFloat32) {
    const auto fa = static_cast<float>(a);
    const auto fb = static_cast<float>(b);
    const auto fc = static_cast<float>(c);
    switch (n.kind) {
      case OpKind::kAdd: return static_cast<double>(fa + fb);
      case OpKind::kSub: return static_cast<double>(fa - fb);
      case OpKind::kMul: return static_cast<double>(fa * fb);
      case OpKind::kDiv: return static_cast<double>(fa / fb);
      case OpKind::kSqrt: return static_cast<double>(std::sqrt(fa));
      case OpKind::kNeg: return static_cast<double>(-fa);
      case OpKind::kAbs: return static_cast<double>(std::fabs(fa));
      case OpKind::kMin: return static_cast<double>(std::fmin(fa, fb));
      case OpKind::kMax: return static_cast<double>(std::fmax(fa, fb));
      case OpKind::kFloor: return static_cast<double>(std::floor(fa));
      case OpKind::kSin: {
        float c, s;
        cordic_rotate(fa, &c, &s);
        return static_cast<double>(s);
      }
      case OpKind::kCos: {
        float c, s;
        cordic_rotate(fa, &c, &s);
        return static_cast<double>(c);
      }
      case OpKind::kCmpLt: return fa < fb ? 1.0 : 0.0;
      case OpKind::kCmpLe: return fa <= fb ? 1.0 : 0.0;
      case OpKind::kCmpEq: return fa == fb ? 1.0 : 0.0;
      case OpKind::kSelect: return fa != 0.0f ? static_cast<double>(fb)
                                              : static_cast<double>(fc);
      default: break;
    }
  } else {
    switch (n.kind) {
      case OpKind::kAdd: return a + b;
      case OpKind::kSub: return a - b;
      case OpKind::kMul: return a * b;
      case OpKind::kDiv: return a / b;
      case OpKind::kSqrt: return std::sqrt(a);
      case OpKind::kNeg: return -a;
      case OpKind::kAbs: return std::fabs(a);
      case OpKind::kMin: return std::fmin(a, b);
      case OpKind::kMax: return std::fmax(a, b);
      case OpKind::kFloor: return std::floor(a);
      case OpKind::kSin: {
        double c, s;
        cordic_rotate(a, &c, &s);
        return s;
      }
      case OpKind::kCos: {
        double c, s;
        cordic_rotate(a, &c, &s);
        return c;
      }
      case OpKind::kCmpLt: return a < b ? 1.0 : 0.0;
      case OpKind::kCmpLe: return a <= b ? 1.0 : 0.0;
      case OpKind::kCmpEq: return a == b ? 1.0 : 0.0;
      case OpKind::kSelect: return a != 0.0 ? b : c;
      default: break;
    }
  }
  CITL_CHECK_MSG(false, "eval() called on a non-arithmetic op");
  return 0.0;
}

namespace {

/// Index of a state/param node within its table, or -1.
int state_index(const Dfg& g, NodeId id) {
  const auto& states = g.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].node == id) return static_cast<int>(i);
  }
  return -1;
}
int param_index(const Dfg& g, NodeId id) {
  const auto& params = g.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].node == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

void CgraMachine::run_iteration() {
  const Dfg& g = kernel_->dfg;
  for (NodeId id : topo_) {
    const Node& n = g.node(id);
    double out = 0.0;
    switch (n.kind) {
      case OpKind::kConst:
        out = quantise(n.constant);
        break;
      case OpKind::kParam:
        out = param_vals_[static_cast<std::size_t>(param_index(g, id))];
        break;
      case OpKind::kState:
        out = state_vals_[static_cast<std::size_t>(state_index(g, id))];
        break;
      case OpKind::kLoad: {
        const double addr = operand(id, n.args[0]);
        const DecodedAddress da = decode_address(addr);
        out = quantise(bus_->read(da.region, da.offset));
        break;
      }
      case OpKind::kStore: {
        const double addr = operand(id, n.args[0]);
        const double val = operand(id, n.args[1]);
        const DecodedAddress da = decode_address(addr);
        bus_->write(da.region, da.offset, val);
        out = val;
        break;
      }
      case OpKind::kMove:
        out = operand(id, n.args[0]);
        break;
      default: {
        const double a = n.arity() > 0 ? operand(id, n.args[0]) : 0.0;
        const double b = n.arity() > 1 ? operand(id, n.args[1]) : 0.0;
        const double c = n.arity() > 2 ? operand(id, n.args[2]) : 0.0;
        out = eval(n, a, b, c);
        break;
      }
    }
    values_[static_cast<std::size_t>(id)] = out;
  }
  commit_iteration();
}

unsigned CgraMachine::run_iteration_cycle_accurate() {
  const Dfg& g = kernel_->dfg;
  const Schedule& sched = kernel_->schedule;

  // Issue order: by start cycle, then NodeId. The schedule guarantees every
  // operand is committed (producer finish <= consumer start), so issuing in
  // start order and committing at finish reproduces the hardware exactly.
  struct Event {
    unsigned start;
    NodeId node;
  };
  std::vector<Event> events;
  events.reserve(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    events.push_back({sched.placement[i].start, static_cast<NodeId>(i)});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.start != b.start ? a.start < b.start : a.node < b.node;
  });

  std::vector<double> committed = values_;  // results visible to consumers
  struct PendingWrite {
    unsigned cycle;
    NodeId node;
    double value;
  };
  std::vector<PendingWrite> pending;

  std::size_t next_event = 0;
  for (unsigned cycle = 0; cycle <= sched.length; ++cycle) {
    // Commit results whose latency elapsed.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->cycle <= cycle) {
        committed[static_cast<std::size_t>(it->node)] = it->value;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    // Issue ops starting this cycle.
    while (next_event < events.size() && events[next_event].start == cycle) {
      const NodeId id = events[next_event].node;
      ++next_event;
      const Node& n = g.node(id);
      auto read_operand = [&](NodeId producer) {
        if (g.is_pipeline_edge(producer, id)) {
          return pipe_regs_[static_cast<std::size_t>(producer)];
        }
        return committed[static_cast<std::size_t>(producer)];
      };
      double out = 0.0;
      switch (n.kind) {
        case OpKind::kConst:
          out = quantise(n.constant);
          break;
        case OpKind::kParam:
          out = param_vals_[static_cast<std::size_t>(param_index(g, id))];
          break;
        case OpKind::kState:
          out = state_vals_[static_cast<std::size_t>(state_index(g, id))];
          break;
        case OpKind::kLoad: {
          const DecodedAddress da = decode_address(read_operand(n.args[0]));
          out = quantise(bus_->read(da.region, da.offset));
          break;
        }
        case OpKind::kStore: {
          const DecodedAddress da = decode_address(read_operand(n.args[0]));
          const double val = read_operand(n.args[1]);
          bus_->write(da.region, da.offset, val);
          out = val;
          break;
        }
        case OpKind::kMove:
          out = read_operand(n.args[0]);
          break;
        default: {
          const double a = n.arity() > 0 ? read_operand(n.args[0]) : 0.0;
          const double b = n.arity() > 1 ? read_operand(n.args[1]) : 0.0;
          const double c = n.arity() > 2 ? read_operand(n.args[2]) : 0.0;
          out = eval(n, a, b, c);
          break;
        }
      }
      values_[static_cast<std::size_t>(id)] = out;
      pending.push_back(
          {sched.placement[static_cast<std::size_t>(id)].finish, id, out});
    }
  }
  CITL_CHECK_MSG(pending.empty(), "uncommitted results after makespan");
  commit_iteration();
  return sched.length;
}

void CgraMachine::commit_iteration() {
  const Dfg& g = kernel_->dfg;
  // Pipeline registers latch this iteration's stage-0 values.
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.node(static_cast<NodeId>(i)).stage == 0) {
      pipe_regs_[i] = values_[i];
    }
  }
  // States take their update nodes' values.
  const auto& states = g.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_vals_[i] = values_[static_cast<std::size_t>(states[i].update)];
  }
  ++iterations_;
  // Per-iteration occupancy accounting: one context switch through the whole
  // schedule, `length` CGRA clock ticks consumed.
  static obs::Counter& iterations =
      obs::Registry::global().counter("cgra.iterations");
  static obs::Counter& cycles =
      obs::Registry::global().counter("cgra.schedule_cycles");
  iterations.add();
  cycles.add(kernel_->schedule.length);
}

}  // namespace citl::cgra
