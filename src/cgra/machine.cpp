#include "cgra/machine.hpp"

#include <algorithm>

#include "cgra/bytecode.hpp"
#include "cgra/codegen.hpp"
#include "cgra/exec.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace citl::cgra {

namespace {

/// C-ABI bus trampolines for generated kernels (serial machine: the
/// lane-less SensorBus; the lane argument is ignored).
double serial_bus_read(void* bus, std::uint32_t /*lane*/, double addr) {
  const DecodedAddress da = decode_address(addr);
  return static_cast<SensorBus*>(bus)->read(da.region, da.offset);
}

void serial_bus_write(void* bus, std::uint32_t /*lane*/, double addr,
                      double value) {
  const DecodedAddress da = decode_address(addr);
  static_cast<SensorBus*>(bus)->write(da.region, da.offset, value);
}

double serial_bus_read_at(void* bus, std::uint32_t /*lane*/,
                          std::uint32_t region, double offset) {
  return static_cast<SensorBus*>(bus)->read(static_cast<SensorRegion>(region),
                                            offset);
}

void serial_bus_write_at(void* bus, std::uint32_t /*lane*/,
                         std::uint32_t region, double offset, double value) {
  static_cast<SensorBus*>(bus)->write(static_cast<SensorRegion>(region),
                                      offset, value);
}

[[noreturn]] void throw_unknown(const CompiledKernel& kernel, const char* what,
                                std::string_view name) {
  std::string msg = "unknown kernel ";
  msg += what;
  msg += " '";
  msg += name;
  msg += "' in kernel '";
  msg += kernel.name;
  msg += "' (have:";
  if (std::string_view(what) == "parameter") {
    for (const auto& p : kernel.dfg.params()) msg += " " + p.name;
  } else {
    for (const auto& s : kernel.dfg.states()) msg += " " + s.name;
  }
  msg += ")";
  throw ConfigError(msg, ErrorCode::kUnknownKey);
}

}  // namespace

namespace detail {

void throw_invalid_handle(const CompiledKernel& kernel, const char* what) {
  throw ConfigError(std::string("invalid ") + what + " handle for kernel '" +
                        kernel.name + "'",
                    ErrorCode::kUnknownKey);
}

void throw_lane_out_of_range(const CompiledKernel& kernel, std::size_t lane,
                             std::size_t lanes) {
  throw ConfigError("lane " + std::to_string(lane) +
                        " out of range in kernel '" + kernel.name + "' (" +
                        std::to_string(lanes) +
                        (lanes == 1 ? " lane)" : " lanes)"),
                    ErrorCode::kOutOfRange);
}

}  // namespace detail

ParamHandle param_handle(const CompiledKernel& kernel, std::string_view name) {
  const ParamHandle h = find_param(kernel, name);
  if (!h.valid()) throw_unknown(kernel, "parameter", name);
  return h;
}

StateHandle state_handle(const CompiledKernel& kernel, std::string_view name) {
  const StateHandle h = find_state(kernel, name);
  if (!h.valid()) throw_unknown(kernel, "state", name);
  return h;
}

ParamHandle find_param(const CompiledKernel& kernel,
                       std::string_view name) noexcept {
  const auto& params = kernel.dfg.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return ParamHandle{static_cast<int>(i)};
  }
  return ParamHandle{};
}

StateHandle find_state(const CompiledKernel& kernel,
                       std::string_view name) noexcept {
  const auto& states = kernel.dfg.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].name == name) return StateHandle{static_cast<int>(i)};
  }
  return StateHandle{};
}

CgraMachine::CgraMachine(const CompiledKernel& kernel, SensorBus& bus,
                         Precision precision, ExecTier tier)
    : kernel_(&kernel),
      bus_(&bus),
      precision_(precision),
      attribution_counters_(kernel) {
  tier_ = resolve_exec_tier(tier, kernel, precision, /*lanes=*/1, &native_);
  if (tier_ == ExecTier::kBytecode) {
    bytecode_ = std::make_unique<BytecodeProgram>(kernel, /*lanes=*/1);
  }
  values_.assign(kernel.dfg.size(), 0.0);
  pipe_regs_.assign(kernel.dfg.size(), 0.0);
  topo_ = kernel.dfg.topo_order();
  // Node -> param/state slot tables, so source nodes resolve their value in
  // O(1) inside the interpreter loop instead of scanning the var tables.
  param_slot_.assign(kernel.dfg.size(), -1);
  state_slot_.assign(kernel.dfg.size(), -1);
  const auto& params = kernel.dfg.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    param_slot_[static_cast<std::size_t>(params[i].node)] =
        static_cast<int>(i);
  }
  const auto& states = kernel.dfg.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_slot_[static_cast<std::size_t>(states[i].node)] =
        static_cast<int>(i);
  }
  reset();
}

void CgraMachine::reset() {
  const Dfg& g = kernel_->dfg;
  state_vals_.clear();
  for (const auto& s : g.states()) state_vals_.push_back(s.initial);
  param_vals_.clear();
  for (const auto& p : g.params()) param_vals_.push_back(p.default_value);
  std::fill(values_.begin(), values_.end(), 0.0);
  std::fill(pipe_regs_.begin(), pipe_regs_.end(), 0.0);
  iterations_ = 0;
}

void CgraMachine::check_lane(std::size_t lane) const {
  if (lane != 0) detail::throw_lane_out_of_range(*kernel_, lane, 1);
}

void CgraMachine::set_param(ParamHandle h, double value, std::size_t lane) {
  check_lane(lane);
  if (!h.valid() ||
      static_cast<std::size_t>(h.index) >= param_vals_.size()) {
    detail::throw_invalid_handle(*kernel_, "parameter");
  }
  param_vals_[static_cast<std::size_t>(h.index)] = quantise(value);
}

double CgraMachine::param(ParamHandle h, std::size_t lane) const {
  check_lane(lane);
  if (!h.valid() ||
      static_cast<std::size_t>(h.index) >= param_vals_.size()) {
    detail::throw_invalid_handle(*kernel_, "parameter");
  }
  return param_vals_[static_cast<std::size_t>(h.index)];
}

double CgraMachine::state(StateHandle h, std::size_t lane) const {
  check_lane(lane);
  if (!h.valid() ||
      static_cast<std::size_t>(h.index) >= state_vals_.size()) {
    detail::throw_invalid_handle(*kernel_, "state");
  }
  return state_vals_[static_cast<std::size_t>(h.index)];
}

void CgraMachine::snapshot_states(std::size_t lane, double* out) const {
  check_lane(lane);
  for (std::size_t s = 0; s < state_vals_.size(); ++s) out[s] = state_vals_[s];
}

void CgraMachine::restore_states(std::size_t lane, const double* values) {
  check_lane(lane);
  // Raw copy, no re-quantise: the image came from snapshot_states() and is
  // already at working precision, so the round-trip is bit-exact.
  for (std::size_t s = 0; s < state_vals_.size(); ++s) state_vals_[s] = values[s];
}

void CgraMachine::snapshot_pipe_regs(std::size_t lane, double* out) const {
  check_lane(lane);
  for (std::size_t i = 0; i < pipe_regs_.size(); ++i) out[i] = pipe_regs_[i];
}

void CgraMachine::restore_pipe_regs(std::size_t lane, const double* values) {
  check_lane(lane);
  for (std::size_t i = 0; i < pipe_regs_.size(); ++i) pipe_regs_[i] = values[i];
}

void CgraMachine::set_state(StateHandle h, double value, std::size_t lane) {
  check_lane(lane);
  if (!h.valid() ||
      static_cast<std::size_t>(h.index) >= state_vals_.size()) {
    detail::throw_invalid_handle(*kernel_, "state");
  }
  state_vals_[static_cast<std::size_t>(h.index)] = quantise(value);
}

void CgraMachine::set_param(const std::string& name, double value) {
  set_param(cgra::param_handle(*kernel_, name), value);
}

double CgraMachine::param(const std::string& name) const {
  return param(cgra::param_handle(*kernel_, name));
}

double CgraMachine::state(const std::string& name) const {
  return state(cgra::state_handle(*kernel_, name));
}

void CgraMachine::set_state(const std::string& name, double value) {
  set_state(cgra::state_handle(*kernel_, name), value);
}

double CgraMachine::value(NodeId node) const {
  CITL_CHECK(node >= 0 && static_cast<std::size_t>(node) < values_.size());
  return values_[static_cast<std::size_t>(node)];
}

double CgraMachine::quantise(double v) const noexcept {
  return precision_ == Precision::kFloat32
             ? static_cast<double>(static_cast<float>(v))
             : v;
}

double CgraMachine::operand(NodeId consumer, NodeId producer) const {
  // Pipeline edges read the register written in the previous iteration.
  if (kernel_->dfg.is_pipeline_edge(producer, consumer)) {
    return pipe_regs_[static_cast<std::size_t>(producer)];
  }
  return values_[static_cast<std::size_t>(producer)];
}

double CgraMachine::eval(const Node& n, double a, double b, double c) {
  return precision_ == Precision::kFloat32
             ? detail::eval_scalar<float>(n.kind, a, b, c)
             : detail::eval_scalar<double>(n.kind, a, b, c);
}

CgraMachine::~CgraMachine() = default;

void CgraMachine::run_iteration() {
  // Per-tier iteration series (exec_tier.hpp ordering): which back end the
  // functional path actually ran.
  static obs::Counter* const tier_counters[3] = {
      &obs::Registry::global().counter("cgra.exec.iterations.interpreter"),
      &obs::Registry::global().counter("cgra.exec.iterations.bytecode"),
      &obs::Registry::global().counter("cgra.exec.iterations.native")};
  tier_counters[static_cast<int>(tier_)]->add();
  switch (tier_) {
    case ExecTier::kNative: {
      NativeCtx ctx;
      ctx.values = values_.data();
      ctx.pipe_regs = pipe_regs_.data();
      ctx.state_vals = state_vals_.data();
      ctx.param_vals = param_vals_.data();
      ctx.bus = bus_;
      ctx.bus_read = &serial_bus_read;
      ctx.bus_write = &serial_bus_write;
      ctx.bus_read_at = &serial_bus_read_at;
      ctx.bus_write_at = &serial_bus_write_at;
      native_->run_dense(ctx);
      commit_iteration();
      break;
    }
    case ExecTier::kBytecode: {
      BcContext ctx;
      ctx.values = values_.data();
      ctx.pipe_regs = pipe_regs_.data();
      ctx.state_vals = state_vals_.data();
      ctx.param_vals = param_vals_.data();
      ctx.lanes = 1;
      ctx.scratch_f = scratch_f_.data();
      ctx.scratch_d = scratch_d_.data();
      bytecode_->run_serial(precision_, ctx, *bus_);
      commit_iteration();
      break;
    }
    default:
      run_iteration_interpreted();
      break;
  }
}

void CgraMachine::run_iteration_interpreted() {
  const Dfg& g = kernel_->dfg;
  for (NodeId id : topo_) {
    const Node& n = g.node(id);
    double out = 0.0;
    switch (n.kind) {
      case OpKind::kConst:
        out = quantise(n.constant);
        break;
      case OpKind::kParam:
        out = param_vals_[static_cast<std::size_t>(
            param_slot_[static_cast<std::size_t>(id)])];
        break;
      case OpKind::kState:
        out = state_vals_[static_cast<std::size_t>(
            state_slot_[static_cast<std::size_t>(id)])];
        break;
      case OpKind::kLoad: {
        const double addr = operand(id, n.args[0]);
        const DecodedAddress da = decode_address(addr);
        out = quantise(bus_->read(da.region, da.offset));
        break;
      }
      case OpKind::kStore: {
        const double addr = operand(id, n.args[0]);
        const double val = operand(id, n.args[1]);
        const DecodedAddress da = decode_address(addr);
        bus_->write(da.region, da.offset, val);
        out = val;
        break;
      }
      case OpKind::kMove:
        out = operand(id, n.args[0]);
        break;
      default: {
        const double a = n.arity() > 0 ? operand(id, n.args[0]) : 0.0;
        const double b = n.arity() > 1 ? operand(id, n.args[1]) : 0.0;
        const double c = n.arity() > 2 ? operand(id, n.args[2]) : 0.0;
        out = eval(n, a, b, c);
        break;
      }
    }
    values_[static_cast<std::size_t>(id)] = out;
  }
  commit_iteration();
}

unsigned CgraMachine::run_iteration_cycle_accurate() {
  const Dfg& g = kernel_->dfg;
  const Schedule& sched = kernel_->schedule;

  // Issue order: by start cycle, then NodeId. The schedule guarantees every
  // operand is committed (producer finish <= consumer start), so issuing in
  // start order and committing at finish reproduces the hardware exactly.
  struct Event {
    unsigned start;
    NodeId node;
  };
  std::vector<Event> events;
  events.reserve(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    events.push_back({sched.placement[i].start, static_cast<NodeId>(i)});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.start != b.start ? a.start < b.start : a.node < b.node;
  });

  std::vector<double> committed = values_;  // results visible to consumers
  struct PendingWrite {
    unsigned cycle;
    NodeId node;
    double value;
  };
  std::vector<PendingWrite> pending;

  std::size_t next_event = 0;
  for (unsigned cycle = 0; cycle <= sched.length; ++cycle) {
    // Commit results whose latency elapsed.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->cycle <= cycle) {
        committed[static_cast<std::size_t>(it->node)] = it->value;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    // Issue ops starting this cycle.
    while (next_event < events.size() && events[next_event].start == cycle) {
      const NodeId id = events[next_event].node;
      ++next_event;
      const Node& n = g.node(id);
      auto read_operand = [&](NodeId producer) {
        if (g.is_pipeline_edge(producer, id)) {
          return pipe_regs_[static_cast<std::size_t>(producer)];
        }
        return committed[static_cast<std::size_t>(producer)];
      };
      double out = 0.0;
      switch (n.kind) {
        case OpKind::kConst:
          out = quantise(n.constant);
          break;
        case OpKind::kParam:
          out = param_vals_[static_cast<std::size_t>(
              param_slot_[static_cast<std::size_t>(id)])];
          break;
        case OpKind::kState:
          out = state_vals_[static_cast<std::size_t>(
              state_slot_[static_cast<std::size_t>(id)])];
          break;
        case OpKind::kLoad: {
          const DecodedAddress da = decode_address(read_operand(n.args[0]));
          out = quantise(bus_->read(da.region, da.offset));
          break;
        }
        case OpKind::kStore: {
          const DecodedAddress da = decode_address(read_operand(n.args[0]));
          const double val = read_operand(n.args[1]);
          bus_->write(da.region, da.offset, val);
          out = val;
          break;
        }
        case OpKind::kMove:
          out = read_operand(n.args[0]);
          break;
        default: {
          const double a = n.arity() > 0 ? read_operand(n.args[0]) : 0.0;
          const double b = n.arity() > 1 ? read_operand(n.args[1]) : 0.0;
          const double c = n.arity() > 2 ? read_operand(n.args[2]) : 0.0;
          out = eval(n, a, b, c);
          break;
        }
      }
      values_[static_cast<std::size_t>(id)] = out;
      pending.push_back(
          {sched.placement[static_cast<std::size_t>(id)].finish, id, out});
    }
  }
  CITL_CHECK_MSG(pending.empty(), "uncommitted results after makespan");
  commit_iteration();
  return sched.length;
}

void CgraMachine::commit_iteration() {
  const Dfg& g = kernel_->dfg;
  // Pipeline registers latch this iteration's stage-0 values.
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.node(static_cast<NodeId>(i)).stage == 0) {
      pipe_regs_[i] = values_[i];
    }
  }
  // States take their update nodes' values.
  const auto& states = g.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_vals_[i] = values_[static_cast<std::size_t>(states[i].update)];
  }
  ++iterations_;
  // Per-iteration occupancy accounting: one context switch through the whole
  // schedule, `length` CGRA clock ticks consumed.
  static obs::Counter& iterations =
      obs::Registry::global().counter("cgra.iterations");
  static obs::Counter& cycles =
      obs::Registry::global().counter("cgra.schedule_cycles");
  iterations.add();
  cycles.add(kernel_->schedule.length);
  attribution_counters_.add_iterations(1);
}

}  // namespace citl::cgra
