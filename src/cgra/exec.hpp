// Shared scalar operator semantics of the CGRA's processing elements.
//
// Both interpreters — CgraMachine (one lane, functional or cycle-accurate)
// and BatchedCgraMachine (N lanes, structure-of-arrays) — must produce
// bit-identical results; the equivalence tests in test_batch.cpp pin it per
// kernel. The only way to keep that guarantee cheap is to have exactly one
// definition of what each operator computes, so the per-op arithmetic lives
// here and the interpreters differ only in how they walk the graph.
#pragma once

#include <cmath>

#include "cgra/op.hpp"
#include "core/error.hpp"

namespace citl::cgra::detail {

/// CORDIC rotation (circular mode), the algorithm the overlay's trigonometric
/// PEs implement (§III-C). 28 iterations bring the angular resolution below
/// binary32 epsilon; the gain constant is pre-divided out of the seed.
inline constexpr int kCordicIters = 28;
inline constexpr double kCordicAtan[kCordicIters] = {
    0.7853981633974483,    0.4636476090008061,    0.24497866312686414,
    0.12435499454676144,   0.06241880999595735,   0.031239833430268277,
    0.015623728620476831,  0.007812341060101111,  0.0039062301319669718,
    0.0019531225164788188, 0.0009765621895593195, 0.0004882812111948983,
    0.00024414062014936177, 0.00012207031189367021, 6.103515617420877e-05,
    3.0517578115526096e-05, 1.5258789061315762e-05, 7.62939453110197e-06,
    3.814697265606496e-06,  1.907348632810187e-06,  9.536743164059608e-07,
    4.7683715820308884e-07, 2.3841857910155797e-07, 1.1920928955078068e-07,
    5.960464477539055e-08,  2.9802322387695303e-08, 1.4901161193847655e-08,
    7.450580596923828e-09};
inline constexpr double kCordicGainInv = 0.6072529350088813;
inline constexpr double kCordicPi = 3.14159265358979323846;

/// Argument reduction of the CORDIC: maps the angle into [-pi/2, pi/2] and
/// reports the cosine sign flip. Split out so the batched interpreter can
/// reduce lane-by-lane and then rotate all lanes in one vectorised loop.
template <typename F>
inline void cordic_reduce(F angle, F* z_out, F* flip_out) {
  double z = static_cast<double>(angle);
  z = std::remainder(z, 2.0 * kCordicPi);
  F flip = F(1);
  if (z > 1.5707963267948966) {
    z = kCordicPi - z;
    flip = F(-1);
  } else if (z < -1.5707963267948966) {
    z = -kCordicPi - z;
    flip = F(-1);
  }
  *z_out = F(z);
  *flip_out = flip;
}

template <typename F>
inline void cordic_rotate(F angle, F* out_cos, F* out_sin) {
  F zr, flip;
  cordic_reduce(angle, &zr, &flip);
  F x = F(kCordicGainInv);
  F y = F(0);
  F pow2 = F(1);
  for (int i = 0; i < kCordicIters; ++i) {
    const F xs = x * pow2;  // x * 2^-i computed via running scale
    const F ys = y * pow2;
    if (zr >= F(0)) {
      const F xn = x - ys;
      y = y + xs;
      x = xn;
      zr = zr - F(kCordicAtan[i]);
    } else {
      const F xn = x + ys;
      y = y - xs;
      x = xn;
      zr = zr + F(kCordicAtan[i]);
    }
    pow2 = pow2 * F(0.5);
  }
  *out_cos = flip * x;
  // sin is odd under the flip about ±pi/2? No: sin(pi - z) = sin(z), so the
  // y component keeps its sign when reducing across the vertical axis.
  *out_sin = y;
}

/// Evaluates one arithmetic operator in working precision F, returning the
/// result widened back to double (the overlay stores binary32 everywhere;
/// the simulator keeps doubles and quantises at the operator boundary).
template <typename F>
inline double eval_scalar(OpKind kind, double a, double b, double c) {
  const auto fa = static_cast<F>(a);
  const auto fb = static_cast<F>(b);
  const auto fc = static_cast<F>(c);
  switch (kind) {
    case OpKind::kAdd: return static_cast<double>(fa + fb);
    case OpKind::kSub: return static_cast<double>(fa - fb);
    case OpKind::kMul: return static_cast<double>(fa * fb);
    case OpKind::kDiv: return static_cast<double>(fa / fb);
    case OpKind::kSqrt: return static_cast<double>(std::sqrt(fa));
    case OpKind::kNeg: return static_cast<double>(-fa);
    case OpKind::kAbs: return static_cast<double>(std::fabs(fa));
    case OpKind::kMin: return static_cast<double>(std::fmin(fa, fb));
    case OpKind::kMax: return static_cast<double>(std::fmax(fa, fb));
    case OpKind::kFloor: return static_cast<double>(std::floor(fa));
    case OpKind::kSin: {
      F cc, ss;
      cordic_rotate(fa, &cc, &ss);
      return static_cast<double>(ss);
    }
    case OpKind::kCos: {
      F cc, ss;
      cordic_rotate(fa, &cc, &ss);
      return static_cast<double>(cc);
    }
    case OpKind::kCmpLt: return fa < fb ? 1.0 : 0.0;
    case OpKind::kCmpLe: return fa <= fb ? 1.0 : 0.0;
    case OpKind::kCmpEq: return fa == fb ? 1.0 : 0.0;
    case OpKind::kSelect:
      return fa != F(0) ? static_cast<double>(fb) : static_cast<double>(fc);
    default: break;
  }
  CITL_CHECK_MSG(false, "eval() called on a non-arithmetic op");
  return 0.0;
}

}  // namespace citl::cgra::detail
