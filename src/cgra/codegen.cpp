#include "cgra/codegen.hpp"

#include <dlfcn.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <unordered_set>

#include "cgra/exec.hpp"
#include "cgra/op.hpp"
#include "cgra/sensor.hpp"
#include "obs/metrics.hpp"

// The portability header, embedded at build time (embed_header.cmake) so the
// codegen tier can drop a self-contained copy next to every generated kernel.
#include "simd_portability_embed.inc"

namespace citl::cgra {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source emission
// ---------------------------------------------------------------------------

/// Exact round-trip spelling of a double (C99 hex-float). The emitted source
/// must reproduce the host's constants bit-for-bit, and it feeds the content
/// hash, so the formatting has to be deterministic.
std::string hex_double(double v) {
  if (std::isnan(v)) return "(0.0 / 0.0)";
  if (std::isinf(v)) return v > 0 ? "(1.0 / 0.0)" : "(-1.0 / 0.0)";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool is_copy_node(OpKind k) {
  return k == OpKind::kConst || k == OpKind::kParam || k == OpKind::kState ||
         k == OpKind::kMove;
}

bool is_io_node(OpKind k) {
  return k == OpKind::kLoad || k == OpKind::kStore;
}

/// Emits one (kernel, precision, lanes) translation unit. See codegen.hpp
/// for the bit-identity contract; the structure per pass is: topo order,
/// maximal IO-free runs become SIMD block loops (width CITL_W, resolved when
/// the *generated* code is compiled) plus a scalar tail, IO nodes get their
/// own full-lane scalar loops so bus traffic keeps the interpreter's
/// node-outer / lane-ascending order.
class Emitter {
 public:
  Emitter(const CompiledKernel& kernel, Precision precision, std::size_t lanes)
      : k_(kernel), f64_(precision == Precision::kFloat64), lanes_(lanes) {
    const auto n = k_.dfg.size();
    param_slot_.assign(n, -1);
    state_slot_.assign(n, -1);
    const auto& params = k_.dfg.params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      param_slot_[static_cast<std::size_t>(params[i].node)] =
          static_cast<int>(i);
    }
    const auto& states = k_.dfg.states();
    for (std::size_t i = 0; i < states.size(); ++i) {
      state_slot_[static_cast<std::size_t>(states[i].node)] =
          static_cast<int>(i);
    }
    topo_ = k_.dfg.topo_order();
  }

  std::string emit() {
    preamble();
    out_ << "extern \"C\" {\n\n";
    out_ << "typedef struct citl_native_ctx_s {\n"
            "  double* values;\n"
            "  double* pipe_regs;\n"
            "  double* state_vals;\n"
            "  const double* param_vals;\n"
            "  void* bus;\n"
            "  double (*bus_read)(void* bus, unsigned lane, double addr);\n"
            "  void (*bus_write)(void* bus, unsigned lane, double addr,"
            " double value);\n"
            "  double (*bus_read_at)(void* bus, unsigned lane,"
            " unsigned region, double offset);\n"
            "  void (*bus_write_at)(void* bus, unsigned lane,"
            " unsigned region, double offset, double value);\n"
            "} citl_native_ctx;\n\n";
    out_ << "unsigned citl_native_abi(void) { return "
         << kNativeKernelAbi << "u; }\n\n";
    emit_dense();
    emit_masked();
    out_ << "}  // extern \"C\"\n";
    return out_.str();
  }

 private:
  std::size_t row(NodeId id) const {
    return static_cast<std::size_t>(id) * lanes_;
  }

  /// Raw (double-domain) operand row expression indexed by `lane`.
  std::string raw_operand(NodeId consumer, NodeId producer,
                          const std::string& lane) const {
    const char* bank = k_.dfg.is_pipeline_edge(producer, consumer) ? "P" : "V";
    std::ostringstream s;
    s << bank << "[" << row(producer) << " + " << lane << "]";
    return s.str();
  }

  /// Working-precision operand expression indexed by `lane`.
  std::string f_operand(NodeId consumer, NodeId producer,
                        const std::string& lane) const {
    return "(citl_f)" + raw_operand(consumer, producer, lane);
  }

  /// Vector operand: a live block-local when the producer is a compute node
  /// of the current segment, otherwise a (converting) row load at block
  /// offset `b`. Pipeline edges always read the register bank.
  std::string vec_operand(NodeId consumer, NodeId producer) const {
    if (!k_.dfg.is_pipeline_edge(producer, consumer) &&
        locals_.count(producer) != 0) {
      return "n" + std::to_string(producer);
    }
    const char* bank = k_.dfg.is_pipeline_edge(producer, consumer) ? "P" : "V";
    std::ostringstream s;
    s << "CITL_V_LOAD_D(" << bank << " + " << row(producer) << " + b)";
    return s.str();
  }

  double quantised_const(const Node& n) const {
    return f64_ ? n.constant
                : static_cast<double>(static_cast<float>(n.constant));
  }

  /// decode_address() folded at emit time. Only safe when the address
  /// operand is a same-stage constant node: its row always holds exactly the
  /// quantised constant the interpreter would pass at run time.
  bool fold_address(NodeId consumer, NodeId producer,
                    DecodedAddress* out) const {
    const Node& a = k_.dfg.node(producer);
    if (a.kind != OpKind::kConst ||
        k_.dfg.is_pipeline_edge(producer, consumer)) {
      return false;
    }
    *out = decode_address(quantised_const(a));
    return true;
  }

  /// One node evaluated for one lane, bit-identical to
  /// BatchedCgraMachine::run_pass. Used for masked passes, SIMD tails, and
  /// copy/IO nodes inside dense blocks.
  void scalar_stmt(NodeId id, const std::string& lane, const char* ind) {
    const Node& n = k_.dfg.node(id);
    const std::size_t dst = row(id);
    auto A = [&] { return f_operand(id, n.args[0], lane); };
    auto B = [&] { return f_operand(id, n.args[1], lane); };
    auto bin = [&](const char* op) {
      out_ << ind << "V[" << dst << " + " << lane << "] = (double)(" << A()
           << " " << op << " " << B() << ");\n";
    };
    auto call1 = [&](const char* fn) {
      out_ << ind << "V[" << dst << " + " << lane << "] = (double)" << fn
           << "(" << A() << ");\n";
    };
    auto cmp = [&](const char* op) {
      out_ << ind << "V[" << dst << " + " << lane << "] = " << A() << " " << op
           << " " << B() << " ? 1.0 : 0.0;\n";
    };
    switch (n.kind) {
      case OpKind::kConst:
        out_ << ind << "V[" << dst << " + " << lane << "] = "
             << hex_double(quantised_const(n)) << ";\n";
        break;
      case OpKind::kParam:
        out_ << ind << "V[" << dst << " + " << lane << "] = PR["
             << static_cast<std::size_t>(
                    param_slot_[static_cast<std::size_t>(id)]) *
                    lanes_
             << " + " << lane << "];\n";
        break;
      case OpKind::kState:
        out_ << ind << "V[" << dst << " + " << lane << "] = S["
             << static_cast<std::size_t>(
                    state_slot_[static_cast<std::size_t>(id)]) *
                    lanes_
             << " + " << lane << "];\n";
        break;
      case OpKind::kMove:
        out_ << ind << "V[" << dst << " + " << lane << "] = "
             << raw_operand(id, n.args[0], lane) << ";\n";
        break;
      case OpKind::kLoad: {
        DecodedAddress da;
        if (fold_address(id, n.args[0], &da)) {
          out_ << ind << "V[" << dst << " + " << lane
               << "] = (double)(citl_f)ctx->bus_read_at(ctx->bus, (unsigned)("
               << lane << "), " << static_cast<unsigned>(da.region) << "u, "
               << hex_double(da.offset) << ");\n";
        } else {
          out_ << ind << "V[" << dst << " + " << lane
               << "] = (double)(citl_f)ctx->bus_read(ctx->bus, (unsigned)("
               << lane << "), " << raw_operand(id, n.args[0], lane) << ");\n";
        }
        break;
      }
      case OpKind::kStore: {
        DecodedAddress da;
        out_ << ind << "{ const double sv = "
             << raw_operand(id, n.args[1], lane) << "; ";
        if (fold_address(id, n.args[0], &da)) {
          out_ << "ctx->bus_write_at(ctx->bus, (unsigned)(" << lane << "), "
               << static_cast<unsigned>(da.region) << "u, "
               << hex_double(da.offset) << ", sv); ";
        } else {
          out_ << "ctx->bus_write(ctx->bus, (unsigned)(" << lane << "), "
               << raw_operand(id, n.args[0], lane) << ", sv); ";
        }
        out_ << "V[" << dst << " + " << lane << "] = sv; }\n";
        break;
      }
      case OpKind::kAdd: bin("+"); break;
      case OpKind::kSub: bin("-"); break;
      case OpKind::kMul: bin("*"); break;
      case OpKind::kDiv: bin("/"); break;
      case OpKind::kSqrt: call1("std::sqrt"); break;
      case OpKind::kNeg:
        out_ << ind << "V[" << dst << " + " << lane << "] = (double)(-"
             << A() << ");\n";
        break;
      case OpKind::kAbs: call1("std::fabs"); break;
      case OpKind::kMin:
        out_ << ind << "V[" << dst << " + " << lane
             << "] = (double)std::fmin(" << A() << ", " << B() << ");\n";
        break;
      case OpKind::kMax:
        out_ << ind << "V[" << dst << " + " << lane
             << "] = (double)std::fmax(" << A() << ", " << B() << ");\n";
        break;
      case OpKind::kFloor: call1("std::floor"); break;
      case OpKind::kSin:
      case OpKind::kCos:
        out_ << ind << "{ citl_f c_, s_; citl_cordic_s(" << A()
             << ", &c_, &s_); V[" << dst << " + " << lane << "] = (double)"
             << (n.kind == OpKind::kSin ? "s_" : "c_") << "; }\n";
        break;
      case OpKind::kCmpLt: cmp("<"); break;
      case OpKind::kCmpLe: cmp("<="); break;
      case OpKind::kCmpEq: cmp("=="); break;
      case OpKind::kSelect:
        out_ << ind << "V[" << dst << " + " << lane << "] = " << A()
             << " != (citl_f)0 ? (double)" << f_operand(id, n.args[1], lane)
             << " : (double)" << f_operand(id, n.args[2], lane) << ";\n";
        break;
    }
  }

  /// One node inside the SIMD block loop (lanes [b, b + CITL_W)). Compute
  /// nodes become width-CITL_W vector locals; copy nodes stay raw double
  /// copies (a conversion through working precision would quantise values
  /// the interpreter passes through untouched).
  void vector_stmt(NodeId id) {
    const Node& n = k_.dfg.node(id);
    if (is_copy_node(n.kind)) {
      out_ << "    for (int w = 0; w < CITL_W; ++w) {\n";
      scalar_stmt(id, "(b + w)", "      ");
      out_ << "    }\n";
      return;
    }
    const std::string name = "n" + std::to_string(id);
    auto A = [&] { return vec_operand(id, n.args[0]); };
    auto B = [&] { return vec_operand(id, n.args[1]); };
    auto def = [&](const std::string& expr) {
      out_ << "    const citl_v " << name << " = " << expr << ";\n";
    };
    switch (n.kind) {
      case OpKind::kAdd: def("CITL_V_ADD(" + A() + ", " + B() + ")"); break;
      case OpKind::kSub: def("CITL_V_SUB(" + A() + ", " + B() + ")"); break;
      case OpKind::kMul: def("CITL_V_MUL(" + A() + ", " + B() + ")"); break;
      case OpKind::kDiv: def("CITL_V_DIV(" + A() + ", " + B() + ")"); break;
      case OpKind::kSqrt: def("CITL_V_SQRT(" + A() + ")"); break;
      case OpKind::kNeg: def("CITL_V_NEG(" + A() + ")"); break;
      case OpKind::kAbs: def("CITL_V_ABS(" + A() + ")"); break;
      case OpKind::kMin: def("CITL_V_FMIN(" + A() + ", " + B() + ")"); break;
      case OpKind::kMax: def("CITL_V_FMAX(" + A() + ", " + B() + ")"); break;
      case OpKind::kFloor: def("CITL_V_FLOOR(" + A() + ")"); break;
      case OpKind::kCmpLt: def("CITL_V_LT(" + A() + ", " + B() + ")"); break;
      case OpKind::kCmpLe: def("CITL_V_LE(" + A() + ", " + B() + ")"); break;
      case OpKind::kCmpEq: def("CITL_V_EQ(" + A() + ", " + B() + ")"); break;
      case OpKind::kSelect:
        def("CITL_V_SELECT(" + A() + ", " + B() + ", " +
            vec_operand(id, n.args[2]) + ")");
        break;
      default:
        break;  // copy/IO handled elsewhere, CORDIC by emit_cordic_group()
    }
    out_ << "    CITL_V_STORE_D(V + " << row(id) << " + b, " << name
         << ");\n";
    locals_.insert(id);
  }

  /// All operands of `id` computable at this point of the block body: a
  /// producer outside the segment (row load), a pipeline edge (register-bank
  /// load), or a segment node already emitted.
  bool node_ready(NodeId id, const std::unordered_set<NodeId>& segment,
                  const std::unordered_set<NodeId>& done) const {
    const Node& n = k_.dfg.node(id);
    for (NodeId a : n.args) {
      if (a == kNoNode) continue;
      if (k_.dfg.is_pipeline_edge(a, id)) continue;
      if (segment.count(a) != 0 && done.count(a) == 0) return false;
    }
    return true;
  }

  /// Emits one fused rotation loop for a batch of mutually independent
  /// CORDIC nodes. Distinct angles rotate as interleaved chains sharing the
  /// iteration counter and the running 2^-i scale — the per-angle operation
  /// sequence is exactly eval_cordic's select form, so values are unchanged;
  /// the interleave only buys instruction-level parallelism. Nodes that take
  /// sine and cosine of the *same* angle share one chain outright.
  void emit_cordic_group(const std::vector<NodeId>& group, int gid) {
    struct AngleKey {
      NodeId producer;
      bool pipe;
    };
    std::vector<AngleKey> angles;
    std::vector<std::string> angle_exprs;
    std::vector<std::size_t> angle_of(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      const NodeId id = group[i];
      const NodeId a = k_.dfg.node(id).args[0];
      const bool pipe = k_.dfg.is_pipeline_edge(a, id);
      std::size_t u = 0;
      while (u < angles.size() &&
             !(angles[u].producer == a && angles[u].pipe == pipe)) {
        ++u;
      }
      if (u == angles.size()) {
        angles.push_back({a, pipe});
        angle_exprs.push_back(vec_operand(id, a));
      }
      angle_of[i] = u;
    }
    const std::string g = "cg" + std::to_string(gid) + "_";
    auto nm = [&](const char* base, std::size_t u) {
      return g + base + std::to_string(u);
    };
    for (std::size_t u = 0; u < angles.size(); ++u) {
      out_ << "    citl_v " << nm("c", u) << ", " << nm("s", u) << ";\n";
    }
    out_ << "    {\n";
    for (std::size_t u = 0; u < angles.size(); ++u) {
      out_ << "      double " << nm("z", u) << "_[CITL_W], " << nm("f", u)
           << "_[CITL_W];\n"
           << "      { double a_[CITL_W]; CITL_V_STORE_D(a_, "
           << angle_exprs[u] << ");\n"
           << "        for (int w = 0; w < CITL_W; ++w) {\n"
           << "          citl_f z_, f_;\n"
           << "          citl_reduce((citl_f)a_[w], &z_, &f_);\n"
           << "          " << nm("z", u) << "_[w] = (double)z_; " << nm("f", u)
           << "_[w] = (double)f_;\n"
           << "        } }\n";
    }
    for (std::size_t u = 0; u < angles.size(); ++u) {
      out_ << "      citl_v x" << u << " = CITL_V_SET1((citl_f)CITL_GAIN_INV),"
           << " y" << u << " = CITL_V_SET1((citl_f)0)," << " z" << u
           << " = CITL_V_LOAD_D(" << nm("z", u) << "_);\n";
    }
    out_ << "      citl_v pw = CITL_V_SET1((citl_f)1);\n"
         << "      for (int i = 0; i < " << detail::kCordicIters
         << "; ++i) {\n"
         << "        const citl_v at = CITL_V_SET1((citl_f)citl_atan[i]);\n";
    for (std::size_t u = 0; u < angles.size(); ++u) {
      const std::string x = "x" + std::to_string(u);
      const std::string y = "y" + std::to_string(u);
      const std::string z = "z" + std::to_string(u);
      // Select form, not a ±1-factor multiply: both branch values compute in
      // parallel with the compare, keeping the z chain (the loop's critical
      // path) at compare ∥ add/sub → blend.
      out_ << "        {\n"
           << "          const citl_v xs = CITL_V_MUL(" << x << ", pw);\n"
           << "          const citl_v ys = CITL_V_MUL(" << y << ", pw);\n"
           << "          const citl_vm pos = CITL_V_GE0(" << z << ");\n"
           << "          const citl_v xn = CITL_V_SEL(pos, CITL_V_SUB(" << x
           << ", ys), CITL_V_ADD(" << x << ", ys));\n"
           << "          " << y << " = CITL_V_SEL(pos, CITL_V_ADD(" << y
           << ", xs), CITL_V_SUB(" << y << ", xs));\n"
           << "          " << z << " = CITL_V_SEL(pos, CITL_V_SUB(" << z
           << ", at), CITL_V_ADD(" << z << ", at));\n"
           << "          " << x << " = xn;\n"
           << "        }\n";
    }
    out_ << "        pw = CITL_V_MUL(pw, CITL_V_SET1((citl_f)0.5));\n"
         << "      }\n";
    for (std::size_t u = 0; u < angles.size(); ++u) {
      out_ << "      " << nm("c", u) << " = CITL_V_MUL(CITL_V_LOAD_D("
           << nm("f", u) << "_), x" << u << ");\n"
           << "      " << nm("s", u) << " = y" << u << ";\n";
    }
    out_ << "    }\n";
    for (std::size_t i = 0; i < group.size(); ++i) {
      const NodeId id = group[i];
      const bool is_sin = k_.dfg.node(id).kind == OpKind::kSin;
      out_ << "    const citl_v n" << id << " = "
           << nm(is_sin ? "s" : "c", angle_of[i]) << ";\n"
           << "    CITL_V_STORE_D(V + " << row(id) << " + b, n" << id
           << ");\n";
      locals_.insert(id);
    }
  }

  void emit_bank_locals() {
    out_ << "  double* const V = ctx->values;\n"
            "  double* const P = ctx->pipe_regs;\n"
            "  double* const S = ctx->state_vals;\n"
            "  const double* const PR = ctx->param_vals;\n"
            "  (void)P; (void)S; (void)PR;\n";
  }

  /// The commit phase, emitted at the end of both passes: latch stage-0 rows
  /// into the pipeline-register bank and state update rows into the state
  /// bank, exactly what BatchedCgraMachine::commit / CgraMachine's
  /// commit_iteration do (raw double rows, no quantisation). The host skips
  /// its own data copies for the native tier. Dense emission keeps the lane
  /// loop innermost (one contiguous row per copy — trivially vectorized);
  /// the masked form indirects each copy through the active-lane list.
  void emit_commit_dense() {
    for (std::size_t i = 0; i < k_.dfg.size(); ++i) {
      if (k_.dfg.node(static_cast<NodeId>(i)).stage != 0) continue;
      out_ << "  for (int l = 0; l < CITL_LANES; ++l) P[" << i * lanes_
           << " + l] = V[" << i * lanes_ << " + l];\n";
    }
    const auto& states = k_.dfg.states();
    for (std::size_t i = 0; i < states.size(); ++i) {
      out_ << "  for (int l = 0; l < CITL_LANES; ++l) S[" << i * lanes_
           << " + l] = V[" << row(states[i].update) << " + l];\n";
    }
  }

  void emit_commit_masked() {
    out_ << "  for (unsigned k = 0; k < n; ++k) {\n"
            "    const int l = (int)ids[k];\n";
    for (std::size_t i = 0; i < k_.dfg.size(); ++i) {
      if (k_.dfg.node(static_cast<NodeId>(i)).stage != 0) continue;
      out_ << "    P[" << i * lanes_ << " + l] = V[" << i * lanes_
           << " + l];\n";
    }
    const auto& states = k_.dfg.states();
    for (std::size_t i = 0; i < states.size(); ++i) {
      out_ << "    S[" << i * lanes_ << " + l] = V[" << row(states[i].update)
           << " + l];\n";
    }
    out_ << "  }\n";
  }

  void emit_dense() {
    out_ << "void citl_run_dense(citl_native_ctx* ctx) {\n";
    emit_bank_locals();
    std::size_t i = 0;
    while (i < topo_.size()) {
      const NodeId id = topo_[i];
      if (is_io_node(k_.dfg.node(id).kind)) {
        out_ << "  for (int l = 0; l < CITL_LANES; ++l) {\n";
        scalar_stmt(id, "l", "    ");
        out_ << "  }\n";
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < topo_.size() && !is_io_node(k_.dfg.node(topo_[j]).kind)) ++j;
      locals_.clear();
      out_ << "  for (int b = 0; b + CITL_W <= CITL_LANES; b += CITL_W) {\n";
      // Wave schedule within the IO-free segment: emit ready non-CORDIC
      // nodes in topo order, then fuse every ready CORDIC node into one
      // interleaved rotation loop, and repeat. Reordering is safe — the
      // segment has no observable effects (loads/stores split segments) and
      // data dependencies are respected — and it converts the CORDIC chains
      // from latency-bound back-to-back loops into one throughput-bound one.
      {
        const std::unordered_set<NodeId> segment(topo_.begin() + i,
                                                 topo_.begin() + j);
        std::vector<NodeId> pending(topo_.begin() + i, topo_.begin() + j);
        std::unordered_set<NodeId> done;
        int gid = 0;
        while (!pending.empty()) {
          bool progress = true;
          while (progress) {
            progress = false;
            for (auto it = pending.begin(); it != pending.end();) {
              const OpKind kind = k_.dfg.node(*it).kind;
              const bool cordic =
                  kind == OpKind::kSin || kind == OpKind::kCos;
              if (!cordic && node_ready(*it, segment, done)) {
                vector_stmt(*it);
                done.insert(*it);
                it = pending.erase(it);
                progress = true;
              } else {
                ++it;
              }
            }
          }
          std::vector<NodeId> group;
          for (auto it = pending.begin(); it != pending.end();) {
            const OpKind kind = k_.dfg.node(*it).kind;
            const bool cordic = kind == OpKind::kSin || kind == OpKind::kCos;
            if (cordic && node_ready(*it, segment, done)) {
              group.push_back(*it);
              it = pending.erase(it);
            } else {
              ++it;
            }
          }
          if (group.empty()) break;  // unreachable: the DFG is acyclic
          emit_cordic_group(group, gid++);
          for (NodeId nid : group) done.insert(nid);
        }
      }
      out_ << "  }\n";
      out_ << "  for (int l = (CITL_LANES / CITL_W) * CITL_W;"
              " l < CITL_LANES; ++l) {\n";
      for (std::size_t s = i; s < j; ++s) scalar_stmt(topo_[s], "l", "    ");
      out_ << "  }\n";
      locals_.clear();
      i = j;
    }
    emit_commit_dense();
    out_ << "}\n\n";
  }

  void emit_masked() {
    out_ << "void citl_run_masked(citl_native_ctx* ctx, const unsigned* ids,"
            " unsigned n) {\n";
    emit_bank_locals();
    for (NodeId id : topo_) {
      out_ << "  for (unsigned k = 0; k < n; ++k) {\n"
              "    const int l = (int)ids[k];\n";
      scalar_stmt(id, "l", "    ");
      out_ << "  }\n";
    }
    emit_commit_masked();
    out_ << "}\n\n";
  }

  void preamble() {
    out_ << "// Generated by citl cgra codegen — kernel '" << k_.name
         << "', " << (f64_ ? "f64" : "f32") << ", " << lanes_
         << " lane(s). DO NOT EDIT.\n"
         << "#include \"citl_simd_portability.h\"\n"
            "#include <cmath>\n\n"
         << "#define CITL_PREC_F64 " << (f64_ ? 1 : 0) << "\n"
         << "#define CITL_LANES " << lanes_ << "\n\n";
    out_ <<
        "#if CITL_PREC_F64\n"
        "typedef citl_vd citl_v;\n"
        "typedef citl_vdm citl_vm;\n"
        "typedef double citl_f;\n"
        "#define CITL_W CITL_VD_WIDTH\n"
        "#define CITL_V_LOAD_D citl_vd_load\n"
        "#define CITL_V_STORE_D citl_vd_store\n"
        "#define CITL_V_SET1 citl_vd_set1\n"
        "#define CITL_V_ADD citl_vd_add\n"
        "#define CITL_V_SUB citl_vd_sub\n"
        "#define CITL_V_MUL citl_vd_mul\n"
        "#define CITL_V_DIV citl_vd_div\n"
        "#define CITL_V_SQRT citl_vd_sqrt\n"
        "#define CITL_V_FLOOR citl_vd_floor\n"
        "#define CITL_V_NEG citl_vd_neg\n"
        "#define CITL_V_ABS citl_vd_abs\n"
        "#define CITL_V_FMIN citl_vd_fmin\n"
        "#define CITL_V_FMAX citl_vd_fmax\n"
        "#define CITL_V_LT citl_vd_lt\n"
        "#define CITL_V_LE citl_vd_le\n"
        "#define CITL_V_EQ citl_vd_eq\n"
        "#define CITL_V_SELECT citl_vd_select\n"
        "#define CITL_V_SEL citl_vd_sel\n"
        "#define CITL_V_GE0 citl_vd_ge0\n"
        "#else\n"
        "typedef citl_vf citl_v;\n"
        "typedef citl_vfm citl_vm;\n"
        "typedef float citl_f;\n"
        "#define CITL_W CITL_VF_WIDTH\n"
        "#define CITL_V_LOAD_D citl_vf_load_d\n"
        "#define CITL_V_STORE_D citl_vf_store_d\n"
        "#define CITL_V_SET1 citl_vf_set1\n"
        "#define CITL_V_ADD citl_vf_add\n"
        "#define CITL_V_SUB citl_vf_sub\n"
        "#define CITL_V_MUL citl_vf_mul\n"
        "#define CITL_V_DIV citl_vf_div\n"
        "#define CITL_V_SQRT citl_vf_sqrt\n"
        "#define CITL_V_FLOOR citl_vf_floor\n"
        "#define CITL_V_NEG citl_vf_neg\n"
        "#define CITL_V_ABS citl_vf_abs\n"
        "#define CITL_V_FMIN citl_vf_fmin\n"
        "#define CITL_V_FMAX citl_vf_fmax\n"
        "#define CITL_V_LT citl_vf_lt\n"
        "#define CITL_V_LE citl_vf_le\n"
        "#define CITL_V_EQ citl_vf_eq\n"
        "#define CITL_V_SELECT citl_vf_select\n"
        "#define CITL_V_SEL citl_vf_sel\n"
        "#define CITL_V_GE0 citl_vf_ge0\n"
        "#endif\n\n";
    // CORDIC constants and helpers, bit-identical to cgra/exec.hpp
    // (cordic_rotate) and BatchedCgraMachine::eval_cordic (the select-form
    // rotation performs the same operation sequence per lane).
    out_ << "static const double citl_atan[" << detail::kCordicIters
         << "] = {\n";
    for (int i = 0; i < detail::kCordicIters; ++i) {
      out_ << "    " << hex_double(detail::kCordicAtan[i]) << ",\n";
    }
    out_ << "};\n";
    out_ << "#define CITL_PI " << hex_double(detail::kCordicPi) << "\n"
         << "#define CITL_TWO_PI " << hex_double(2.0 * detail::kCordicPi)
         << "\n"
         << "#define CITL_INV_TWO_PI "
         << hex_double(1.0 / (2.0 * detail::kCordicPi)) << "\n"
         << "#define CITL_HALF_PI " << hex_double(1.5707963267948966) << "\n"
         << "#define CITL_GAIN_INV " << hex_double(detail::kCordicGainInv)
         << "\n\n";
    out_ <<
        "static double citl_rem2pi_slow(double x) {\n"
        "  return std::remainder(x, CITL_TWO_PI);\n"
        "}\n\n"
        "// Bit-exact std::remainder(x, 2*pi) without a libm call on the hot\n"
        "// path. n = rint(x / 2pi) is within one of the nearest integer for\n"
        "// |x| < 1e12, and fma(-n, 2pi, x) performs a single rounding of the\n"
        "// exact x - n*2pi -- which is no rounding at all once n is the true\n"
        "// nearest, because the IEEE remainder is always representable. The\n"
        "// two compares re-anchor n; anything within 1e-9 of the +/-pi\n"
        "// boundary (a tie, or a boundary value the candidate fma had to\n"
        "// round) and oversized or non-finite inputs take the library call.\n"
        "static inline double citl_rem2pi(double x) {\n"
        "  if (!(x > -1.0e12 && x < 1.0e12)) return citl_rem2pi_slow(x);\n"
        "  double n = std::rint(x * CITL_INV_TWO_PI);\n"
        "  double r = std::fma(-n, CITL_TWO_PI, x);\n"
        "  if (r > CITL_PI) {\n"
        "    n += 1.0;\n"
        "    r = std::fma(-n, CITL_TWO_PI, x);\n"
        "  } else if (r < -CITL_PI) {\n"
        "    n -= 1.0;\n"
        "    r = std::fma(-n, CITL_TWO_PI, x);\n"
        "  }\n"
        "  if (std::fabs(std::fabs(r) - CITL_PI) < 1.0e-9) {\n"
        "    return citl_rem2pi_slow(x);\n"
        "  }\n"
        "  return r;\n"
        "}\n\n"
        "static inline void citl_reduce(citl_f angle, citl_f* z_out,"
        " citl_f* flip_out) {\n"
        "  double z = (double)angle;\n"
        "  z = citl_rem2pi(z);\n"
        "  citl_f flip = (citl_f)1;\n"
        "  if (z > CITL_HALF_PI) {\n"
        "    z = CITL_PI - z;\n"
        "    flip = (citl_f)-1;\n"
        "  } else if (z < -CITL_HALF_PI) {\n"
        "    z = -CITL_PI - z;\n"
        "    flip = (citl_f)-1;\n"
        "  }\n"
        "  *z_out = (citl_f)z;\n"
        "  *flip_out = flip;\n"
        "}\n\n"
        "static inline void citl_cordic_s(citl_f angle, citl_f* out_c,"
        " citl_f* out_s) {\n"
        "  citl_f zr, flip;\n"
        "  citl_reduce(angle, &zr, &flip);\n"
        "  citl_f x = (citl_f)CITL_GAIN_INV;\n"
        "  citl_f y = (citl_f)0;\n"
        "  citl_f pow2 = (citl_f)1;\n"
        "  for (int i = 0; i < 28; ++i) {\n"
        "    const citl_f xs = x * pow2;\n"
        "    const citl_f ys = y * pow2;\n"
        "    if (zr >= (citl_f)0) {\n"
        "      const citl_f xn = x - ys;\n"
        "      y = y + xs;\n"
        "      x = xn;\n"
        "      zr = zr - (citl_f)citl_atan[i];\n"
        "    } else {\n"
        "      const citl_f xn = x + ys;\n"
        "      y = y - xs;\n"
        "      x = xn;\n"
        "      zr = zr + (citl_f)citl_atan[i];\n"
        "    }\n"
        "    pow2 = pow2 * (citl_f)0.5;\n"
        "  }\n"
        "  *out_c = flip * x;\n"
        "  *out_s = y;\n"
        "}\n\n";
  }

  const CompiledKernel& k_;
  bool f64_;
  std::size_t lanes_;
  std::vector<int> param_slot_;
  std::vector<int> state_slot_;
  std::vector<NodeId> topo_;
  std::unordered_set<NodeId> locals_;
  std::ostringstream out_;
};

// ---------------------------------------------------------------------------
// Compiler discovery (once per process)
// ---------------------------------------------------------------------------

/// Runs `cmd` through the shell, captures combined stdout+stderr into `out`.
/// Returns the exit status (-1 when popen itself fails).
int run_command(const std::string& cmd, std::string* out) {
  out->clear();
  FILE* p = ::popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) return -1;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, p)) > 0) out->append(buf, got);
  const int status = ::pclose(p);
  return status;
}

std::string first_line(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

std::string shell_quote(const std::string& s) {
  std::string q = "'";
  for (char c : s) {
    if (c == '\'') q += "'\\''";
    else q += c;
  }
  q += "'";
  return q;
}

struct CompilerInfo {
  bool available = false;
  std::string cc;       ///< resolved compiler command
  std::string version;  ///< first line of `cc --version`
  std::string flags;    ///< full flag string used for kernel compiles
  std::string arch;     ///< "avx2" / "neon" / "scalar" under those flags
  std::string error;    ///< why discovery failed (for last_error())
};

CompilerInfo discover_compiler() {
  CompilerInfo info;
  const char* disabled = std::getenv("CITL_CODEGEN_DISABLE");
  if (disabled != nullptr && std::string_view(disabled) == "1") {
    info.error = "native codegen disabled via CITL_CODEGEN_DISABLE=1";
    return info;
  }
  std::vector<std::string> candidates;
  if (const char* env_cc = std::getenv("CITL_CODEGEN_CC")) {
    // Explicit override: no fallthrough, so tests (and operators) can force
    // the bytecode fallback by pointing this at a nonexistent binary.
    candidates.emplace_back(env_cc);
  } else {
#ifdef CITL_HOST_CXX
    candidates.emplace_back(CITL_HOST_CXX);
#endif
    candidates.emplace_back("c++");
    candidates.emplace_back("g++");
    candidates.emplace_back("clang++");
  }
  for (const std::string& cc : candidates) {
    std::string out;
    if (run_command(shell_quote(cc) + " --version", &out) != 0) continue;
    info.cc = cc;
    info.version = first_line(out);
    break;
  }
  if (info.cc.empty()) {
    info.error = "no host compiler found (tried";
    for (const std::string& cc : candidates) info.error += " " + cc;
    info.error += ")";
    return info;
  }
  const std::string base_flags =
      "-std=c++17 -O3 -fPIC -shared -ffp-contract=off -fno-math-errno";
  // -march=native when the compiler accepts it (probing also tells us which
  // SIMD back end the generated kernels will select).
  std::string probe;
  std::string flags = base_flags + " -march=native";
  if (run_command(shell_quote(info.cc) + " " + flags +
                      " -dM -E -x c++ /dev/null",
                  &probe) != 0) {
    flags = base_flags;
    if (run_command(shell_quote(info.cc) + " " + flags +
                        " -dM -E -x c++ /dev/null",
                    &probe) != 0) {
      info.error = "compiler probe failed: " + first_line(probe);
      return info;
    }
  }
  info.flags = flags;
  if (probe.find("__AVX2__") != std::string::npos) {
    info.arch = "avx2";
  } else if (probe.find("__ARM_NEON") != std::string::npos ||
             probe.find("__aarch64__") != std::string::npos) {
    info.arch = "neon";
  } else {
    info.arch = "scalar";
  }
  info.available = true;
  return info;
}

const CompilerInfo& compiler_info() {
  static const CompilerInfo info = discover_compiler();
  return info;
}

// ---------------------------------------------------------------------------
// Content hash, disk cache, loading
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// 32-hex content key: emitted source + everything that changes the produced
/// machine code (compiler version, flags, target SIMD arch, ABI tag).
std::string content_hash(const std::string& source, const CompilerInfo& ci) {
  std::string all = source;
  all += '\0';
  all += ci.version;
  all += '\0';
  all += ci.flags;
  all += '\0';
  all += ci.arch;
  all += '\0';
  all += std::to_string(kNativeKernelAbi);
  const std::uint64_t h1 = fnv1a(all, 14695981039346656037ull);
  const std::uint64_t h2 = fnv1a(all, 0x9e3779b97f4a7c15ull);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

/// Atomic file publication: write to a pid-suffixed temp name, rename into
/// place. Concurrent processes race benignly (same content, last rename
/// wins).
bool write_file_atomic(const fs::path& path, const std::string& content,
                       std::string* error) {
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      *error = "cannot write " + tmp.string();
      return false;
    }
    f.write(content.data(),
            static_cast<std::streamsize>(content.size()));
    if (!f) {
      *error = "short write to " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    *error = "rename to " + path.string() + " failed: " + ec.message();
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

struct LoadedSo {
  void* handle = nullptr;
  NativeKernel::DenseFn dense = nullptr;
  NativeKernel::MaskedFn masked = nullptr;
};

/// dlopen + full verification (ABI tag, content hash, entry points). Any
/// mismatch closes the handle and reports why — the caller treats the .so as
/// corrupt and recompiles.
bool load_so(const fs::path& so, const std::string& hash, LoadedSo* out,
             std::string* error) {
  void* h = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    const char* e = ::dlerror();
    *error = std::string("dlopen failed: ") + (e != nullptr ? e : "?");
    return false;
  }
  auto fail = [&](const std::string& why) {
    ::dlclose(h);
    *error = why;
    return false;
  };
  using AbiFn = unsigned (*)();
  using HashFn = const char* (*)();
  auto abi = reinterpret_cast<AbiFn>(::dlsym(h, "citl_native_abi"));
  if (abi == nullptr) return fail("missing citl_native_abi");
  if (abi() != kNativeKernelAbi) {
    return fail("ABI mismatch: .so has " + std::to_string(abi()) +
                ", host wants " + std::to_string(kNativeKernelAbi));
  }
  auto hfn = reinterpret_cast<HashFn>(::dlsym(h, "citl_native_hash"));
  if (hfn == nullptr) return fail("missing citl_native_hash");
  if (hash != hfn()) return fail("content hash mismatch");
  auto dense =
      reinterpret_cast<NativeKernel::DenseFn>(::dlsym(h, "citl_run_dense"));
  auto masked =
      reinterpret_cast<NativeKernel::MaskedFn>(::dlsym(h, "citl_run_masked"));
  if (dense == nullptr || masked == nullptr) {
    return fail("missing kernel entry points");
  }
  out->handle = h;
  out->dense = dense;
  out->masked = masked;
  return true;
}

struct CodegenObs {
  obs::Counter& compiles;
  obs::Counter& memo_hits;
  obs::Counter& disk_hits;
  obs::Counter& repairs;
  obs::Counter& fallbacks;
  obs::Gauge& compile_ms_total;
  static CodegenObs& get() {
    static CodegenObs o{
        obs::Registry::global().counter("cgra.codegen.compiles"),
        obs::Registry::global().counter("cgra.codegen.memo_hits"),
        obs::Registry::global().counter("cgra.codegen.disk_hits"),
        obs::Registry::global().counter("cgra.codegen.repairs"),
        obs::Registry::global().counter("cgra.codegen.fallbacks"),
        obs::Registry::global().gauge("cgra.codegen.compile_ms_total")};
    return o;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

std::string emit_kernel_source(const CompiledKernel& kernel,
                               Precision precision, std::size_t lanes) {
  Emitter e(kernel, precision, lanes);
  return e.emit();
}

NativeKernel::NativeKernel(void* dl_handle, DenseFn dense, MaskedFn masked,
                           std::string hash, double compile_ms, bool disk_hit,
                           bool repaired)
    : dl_handle_(dl_handle),
      dense_(dense),
      masked_(masked),
      hash_(std::move(hash)),
      compile_ms_(compile_ms),
      disk_hit_(disk_hit),
      repaired_(repaired) {}

NativeKernel::~NativeKernel() {
  if (dl_handle_ != nullptr) ::dlclose(dl_handle_);
}

struct NativeKernelCache::Entry {
  std::promise<std::shared_ptr<const NativeKernel>> promise;
  std::shared_future<std::shared_ptr<const NativeKernel>> future;
  Entry() : future(promise.get_future().share()) {}
};

NativeKernelCache& NativeKernelCache::global() {
  static NativeKernelCache cache;
  return cache;
}

bool NativeKernelCache::compiler_available() {
  return compiler_info().available;
}

std::string NativeKernelCache::compiler_command() {
  return compiler_info().cc;
}

std::string NativeKernelCache::compiler_version() {
  return compiler_info().version;
}

std::string NativeKernelCache::target_simd_arch() {
  return compiler_info().arch;
}

std::string NativeKernelCache::cache_dir() {
  if (const char* env = std::getenv("CITL_KERNEL_CACHE_DIR")) {
    if (env[0] != '\0') return env;
  }
  return "/tmp/citl-kernel-cache-" +
         std::to_string(static_cast<long>(::getuid()));
}

CodegenStats NativeKernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string NativeKernelCache::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void NativeKernelCache::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  memo_.clear();
}

std::shared_ptr<const NativeKernel> NativeKernelCache::get(
    const CompiledKernel& kernel, Precision precision, std::size_t lanes) {
  CodegenObs& o = CodegenObs::get();
  const CompilerInfo& ci = compiler_info();
  if (!ci.available) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fallbacks;
      last_error_ = ci.error;
    }
    o.fallbacks.add();
    return nullptr;
  }
  const std::string source = emit_kernel_source(kernel, precision, lanes);
  const std::string hash = content_hash(source, ci);

  std::shared_ptr<Entry> entry;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(hash);
    if (it != memo_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<Entry>();
      memo_.emplace(hash, entry);
      creator = true;
    }
  }
  if (!creator) {
    // Another caller owns (or owned) this key: wait for its outcome.
    // Memoised failures stay failures — no retry storms on a broken
    // toolchain; clear_memory() resets the verdict.
    auto k = entry->future.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (k != nullptr) ++stats_.memo_hits;
      else ++stats_.fallbacks;
    }
    (k != nullptr ? o.memo_hits : o.fallbacks).add();
    return k;
  }

  bool disk_hit = false;
  bool repaired = false;
  double compile_ms = 0.0;
  std::string error;
  auto k = load_or_compile(source, hash, kernel, precision, lanes, &disk_hit,
                           &repaired, &compile_ms, &error);
  entry->promise.set_value(k);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (k == nullptr) {
      ++stats_.fallbacks;
      last_error_ = error;
    } else if (disk_hit) {
      ++stats_.disk_hits;
    } else {
      ++stats_.compiles;
      stats_.compile_ms_total += compile_ms;
    }
    if (repaired) ++stats_.repairs;
  }
  if (k == nullptr) {
    o.fallbacks.add();
  } else if (disk_hit) {
    o.disk_hits.add();
  } else {
    o.compiles.add();
    o.compile_ms_total.add(compile_ms);
  }
  if (repaired) o.repairs.add();
  return k;
}

std::shared_ptr<const NativeKernel> NativeKernelCache::load_or_compile(
    const std::string& source, const std::string& hash,
    const CompiledKernel& kernel, Precision precision, std::size_t lanes,
    bool* disk_hit, bool* repaired, double* compile_ms, std::string* error) {
  const CompilerInfo& ci = compiler_info();
  const fs::path dir = cache_dir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    *error = "cannot create cache dir " + dir.string() + ": " + ec.message();
    return nullptr;
  }
  const fs::path so = dir / (hash + ".so");
  const fs::path cpp = dir / (hash + ".cpp");
  const fs::path report = dir / (hash + ".json");

  // Warm path: a previously cached .so that passes full verification.
  if (fs::exists(so, ec)) {
    LoadedSo loaded;
    std::string why;
    if (load_so(so, hash, &loaded, &why)) {
      *disk_hit = true;
      return std::make_shared<NativeKernel>(loaded.handle, loaded.dense,
                                            loaded.masked, hash, 0.0,
                                            /*disk_hit=*/true,
                                            /*repaired=*/false);
    }
    // Corrupt / stale: discard and recompile.
    *repaired = true;
    fs::remove(so, ec);
  }

  // Publish the portability header the generated source includes.
  const fs::path header = dir / "citl_simd_portability.h";
  {
    std::ifstream existing(header, std::ios::binary);
    std::string current((std::istreambuf_iterator<char>(existing)),
                        std::istreambuf_iterator<char>());
    if (!existing || current != kSimdPortabilityHeader) {
      if (!write_file_atomic(header, kSimdPortabilityHeader, error)) {
        return nullptr;
      }
    }
  }

  // The content hash is computed over the footer-less source; the footer
  // bakes the hash into the binary so verification can detect a swapped or
  // truncated .so.
  std::string full = source;
  full += "extern \"C\" const char* citl_native_hash(void) { return \"";
  full += hash;
  full += "\"; }\n";
  if (!write_file_atomic(cpp, full, error)) return nullptr;

  const fs::path so_tmp =
      so.string() + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const std::string cmd = shell_quote(ci.cc) + " " + ci.flags + " -I " +
                          shell_quote(dir.string()) + " -o " +
                          shell_quote(so_tmp.string()) + " " +
                          shell_quote(cpp.string());
  std::string cc_out;
  const auto t0 = std::chrono::steady_clock::now();
  const int status = run_command(cmd, &cc_out);
  const auto t1 = std::chrono::steady_clock::now();
  *compile_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (status != 0) {
    *error = "kernel compile failed (" + ci.cc + "): " + first_line(cc_out);
    fs::remove(so_tmp, ec);
    return nullptr;
  }
  fs::rename(so_tmp, so, ec);
  if (ec) {
    *error = "rename of compiled kernel failed: " + ec.message();
    fs::remove(so_tmp, ec);
    return nullptr;
  }

  // Compilation report (one JSON per cache entry; bench and tests read it).
  {
    std::ostringstream j;
    j << "{\n"
      << "  \"schema\": \"citl-compilation-report/1\",\n"
      << "  \"kernel\": \"" << json_escape(kernel.name) << "\",\n"
      << "  \"precision\": \""
      << (precision == Precision::kFloat64 ? "f64" : "f32") << "\",\n"
      << "  \"lanes\": " << lanes << ",\n"
      << "  \"abi\": " << kNativeKernelAbi << ",\n"
      << "  \"simd_arch\": \"" << json_escape(ci.arch) << "\",\n"
      << "  \"hash\": \"" << hash << "\",\n"
      << "  \"compiler\": \"" << json_escape(ci.cc) << "\",\n"
      << "  \"compiler_version\": \"" << json_escape(ci.version) << "\",\n"
      << "  \"flags\": \"" << json_escape(ci.flags) << "\",\n"
      << "  \"compile_ms\": " << *compile_ms << ",\n"
      << "  \"disk_hit\": " << (*disk_hit ? "true" : "false") << ",\n"
      << "  \"repaired\": " << (*repaired ? "true" : "false") << "\n"
      << "}\n";
    std::string werr;
    (void)write_file_atomic(report, j.str(), &werr);  // best-effort
  }

  LoadedSo loaded;
  std::string why;
  if (!load_so(so, hash, &loaded, &why)) {
    *error = "freshly compiled kernel failed verification: " + why;
    fs::remove(so, ec);
    return nullptr;
  }
  return std::make_shared<NativeKernel>(loaded.handle, loaded.dense,
                                        loaded.masked, hash, *compile_ms,
                                        /*disk_hit=*/false, *repaired);
}

ExecTier resolve_exec_tier(ExecTier requested, const CompiledKernel& kernel,
                           Precision precision, std::size_t lanes,
                           std::shared_ptr<const NativeKernel>* out_native) {
  switch (requested) {
    case ExecTier::kInterpreter:
      return ExecTier::kInterpreter;
    case ExecTier::kBytecode:
      return ExecTier::kBytecode;
    case ExecTier::kAuto:
      if (!NativeKernelCache::compiler_available()) return ExecTier::kBytecode;
      [[fallthrough]];
    case ExecTier::kNative: {
      auto native =
          NativeKernelCache::global().get(kernel, precision, lanes);
      if (native != nullptr) {
        *out_native = std::move(native);
        return ExecTier::kNative;
      }
      return ExecTier::kBytecode;
    }
  }
  return ExecTier::kInterpreter;
}

}  // namespace citl::cgra
