// SCAR-style dataflow IR (§III-C).
//
// A kernel is the body of the per-revolution loop, represented as a dataflow
// graph in SSA form:
//   * kConst / kParam / kState nodes are sources,
//   * kState carries a value across iterations; each state names the node
//     whose result becomes its value for the next iteration,
//   * kLoad / kStore talk to the SensorAccess bus,
//   * every node carries a pipeline `stage` (0 or 1). Edges from stage 0 to
//     stage 1 are *pipeline edges*: the consumer reads the value the producer
//     computed in the previous iteration (the paper's manual loop pipelining,
//     §IV-B). Within a stage the graph is an ordinary DAG.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cgra/arch.hpp"
#include "cgra/op.hpp"
#include "core/error.hpp"

namespace citl::cgra {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

struct Node {
  OpKind kind = OpKind::kConst;
  std::array<NodeId, 3> args{kNoNode, kNoNode, kNoNode};
  double constant = 0.0;          ///< value for kConst
  int stage = 0;                  ///< pipeline stage (0 or 1)
  std::string name;               ///< param/state name, or debug label
  std::vector<NodeId> order_deps; ///< extra ordering edges (store chains)

  [[nodiscard]] unsigned arity() const noexcept { return op_arity(kind); }
};

/// A loop-carried state variable.
struct StateVar {
  std::string name;
  NodeId node = kNoNode;    ///< the kState source node
  NodeId update = kNoNode;  ///< node providing next iteration's value
  double initial = 0.0;
};

/// A runtime parameter (set through the parameter interface at run time).
struct ParamVar {
  std::string name;
  NodeId node = kNoNode;
  double default_value = 0.0;
};

class Dfg {
 public:
  // --- construction -----------------------------------------------------
  NodeId add_const(double value);
  NodeId add_param(const std::string& name, double default_value);
  NodeId add_state(const std::string& name, double initial);
  NodeId add_unary(OpKind k, NodeId a, int stage);
  NodeId add_binary(OpKind k, NodeId a, NodeId b, int stage);
  NodeId add_select(NodeId cond, NodeId a, NodeId b, int stage);
  NodeId add_load(NodeId address, int stage);
  NodeId add_store(NodeId address, NodeId value, int stage);

  /// Declares that state `name` takes the value of `update` next iteration.
  void set_state_update(const std::string& name, NodeId update);

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] const Node& node(NodeId id) const {
    CITL_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<StateVar>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] const std::vector<ParamVar>& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const std::vector<NodeId>& stores() const noexcept {
    return stores_;
  }
  [[nodiscard]] bool has_pipeline_stages() const noexcept;

  /// True if the edge producer→consumer crosses from stage 0 into stage 1
  /// (and therefore carries last iteration's value). Sources (constants,
  /// params, states) are exempt: the context memory / register file serves
  /// them to both stages directly — only *computed* stage-0 values travel
  /// through pipeline registers. This matches the paper's manual pipelining,
  /// where the end-of-loop variable copies are made for intermediate results
  /// (the fetched voltages), not for the loop-carried state itself.
  [[nodiscard]] bool is_pipeline_edge(NodeId producer, NodeId consumer) const {
    return node(producer).stage == 0 && node(consumer).stage == 1 &&
           !op_is_source(node(producer).kind);
  }

  /// Intra-iteration predecessors of `id`: value operands and order deps
  /// whose edges do NOT cross the pipeline boundary.
  [[nodiscard]] std::vector<NodeId> intra_preds(NodeId id) const;

  /// Topological order of the intra-iteration DAG. Throws if cyclic.
  [[nodiscard]] std::vector<NodeId> topo_order() const;

  /// Longest latency path from each node to any sink, used as the list
  /// scheduler's priority.
  [[nodiscard]] std::vector<unsigned> criticality(const LatencyTable& lat) const;

  /// Structural checks: arities, operand validity, state updates resolved,
  /// acyclicity. Throws CompileError/logic_error on violations.
  void validate() const;

  /// Counts nodes of a given class (for resource-feasibility checks).
  [[nodiscard]] std::size_t count_class(OpClass c) const;

  /// Human-readable dump (one node per line) for debugging and docs.
  [[nodiscard]] std::string dump() const;

  /// Reconstructs a graph from raw tables (bitstream loading). Unlike the
  /// add_* builders this preserves node ids exactly (no const dedup), so a
  /// stored schedule stays aligned. Validates before returning.
  [[nodiscard]] static Dfg restore(std::vector<Node> nodes,
                                   std::vector<StateVar> states,
                                   std::vector<ParamVar> params,
                                   std::vector<NodeId> stores);

 private:
  NodeId push(Node n);

  std::vector<Node> nodes_;
  std::vector<StateVar> states_;
  std::vector<ParamVar> params_;
  std::vector<NodeId> stores_;
};

}  // namespace citl::cgra
