// Native codegen tier: SCAR schedules compiled to machine code at run time.
//
// emit_kernel_source() lowers a compiled kernel's dataflow graph to
// straight-line C++ — one translation unit per (kernel, precision, lane
// width) — with explicit SIMD over the SoA lane rows via the
// simd_portability.hpp macro layer (AVX2 / NEON / scalar). The emitted code
// is bit-identical to the interpreters by construction: sources and moves
// stay in the raw double domain, compute nodes quantise at operand use
// exactly like cgra/exec.hpp, fmin/fmax/CORDIC go through the same scalar
// libm/iteration sequences, and FP contraction is disabled at compile time.
//
// NativeKernelCache::get() turns that source into a callable: it is keyed by
// a content hash (emitted source + compiler version + flags + ABI tag),
// memoised in-process, and persisted under a disk cache directory
// ($CITL_KERNEL_CACHE_DIR, default /tmp/citl-kernel-cache-<uid>) holding
// <hash>.cpp / <hash>.so / <hash>.json (a compilation report). A corrupt or
// mismatched .so is deleted and recompiled. When no host compiler can be
// found (or $CITL_CODEGEN_DISABLE=1), get() returns nullptr and the machines
// fall back to the bytecode tier — nothing in the pipeline requires a
// toolchain at run time.
//
// Compiler discovery order: $CITL_CODEGEN_CC (explicit, no fallthrough — set
// it to a bogus path to force the fallback), the compiler that built this
// binary, then c++/g++/clang++ on PATH.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cgra/machine.hpp"
#include "cgra/schedule.hpp"

namespace citl::cgra {

/// ABI contract between the host and a generated kernel. Bumping it orphans
/// every cached .so (they fail verification and are recompiled).
inline constexpr unsigned kNativeKernelAbi = 3;

/// Pass-level execution state handed to a generated kernel. Mirrors
/// BcContext plus the sensor-bus trampolines (the generated code never
/// decodes addresses or touches C++ bus classes; the host wraps its bus in
/// two C callbacks). Unlike the interpreter tiers, a generated kernel also
/// owns the commit phase: it latches stage-0 rows into `pipe_regs` and the
/// state update rows into `state_vals` itself (the rows are hot in cache
/// there), so the host skips the data half of commit() for this tier.
struct NativeCtx {
  double* values = nullptr;
  double* pipe_regs = nullptr;
  double* state_vals = nullptr;
  const double* param_vals = nullptr;
  void* bus = nullptr;
  double (*bus_read)(void* bus, std::uint32_t lane, double addr) = nullptr;
  void (*bus_write)(void* bus, std::uint32_t lane, double addr,
                    double value) = nullptr;
  // Pre-decoded variants: the emitter folds decode_address() at codegen time
  // when the address operand is a constant node (it always is in the stock
  // kernels), so the per-lane IO call skips the divide/floor decode.
  double (*bus_read_at)(void* bus, std::uint32_t lane, std::uint32_t region,
                        double offset) = nullptr;
  void (*bus_write_at)(void* bus, std::uint32_t lane, std::uint32_t region,
                       double offset, double value) = nullptr;
};

/// Emits the C++ translation unit for one (kernel, precision, lanes) triple.
/// Deterministic: byte-identical input -> byte-identical source (the content
/// hash depends on it).
[[nodiscard]] std::string emit_kernel_source(const CompiledKernel& kernel,
                                             Precision precision,
                                             std::size_t lanes);

/// A loaded generated kernel (owns the dlopen handle).
class NativeKernel {
 public:
  using DenseFn = void (*)(NativeCtx*);
  using MaskedFn = void (*)(NativeCtx*, const std::uint32_t*, std::uint32_t);

  NativeKernel(void* dl_handle, DenseFn dense, MaskedFn masked,
               std::string hash, double compile_ms, bool disk_hit,
               bool repaired);
  ~NativeKernel();
  NativeKernel(const NativeKernel&) = delete;
  NativeKernel& operator=(const NativeKernel&) = delete;

  void run_dense(NativeCtx& ctx) const { dense_(&ctx); }
  void run_masked(NativeCtx& ctx, const std::uint32_t* lane_ids,
                  std::uint32_t n_active) const {
    masked_(&ctx, lane_ids, n_active);
  }

  [[nodiscard]] const std::string& hash() const noexcept { return hash_; }
  /// Wall-clock cost of the host-compiler invocation that produced the .so
  /// this process loaded; 0 when it came straight from the disk cache.
  [[nodiscard]] double compile_ms() const noexcept { return compile_ms_; }
  [[nodiscard]] bool disk_hit() const noexcept { return disk_hit_; }
  [[nodiscard]] bool repaired() const noexcept { return repaired_; }

 private:
  void* dl_handle_;
  DenseFn dense_;
  MaskedFn masked_;
  std::string hash_;
  double compile_ms_;
  bool disk_hit_;
  bool repaired_;
};

/// Process-wide codegen counters (also mirrored into obs:
/// cgra.codegen.compiles / memo_hits / disk_hits / repairs / fallbacks /
/// compile_ms_total).
struct CodegenStats {
  std::uint64_t compiles = 0;   ///< host-compiler invocations
  std::uint64_t memo_hits = 0;  ///< served from the in-process memo
  std::uint64_t disk_hits = 0;  ///< dlopen'd a previously cached .so
  std::uint64_t repairs = 0;    ///< corrupt cached .so deleted + recompiled
  std::uint64_t fallbacks = 0;  ///< get() returned nullptr
  double compile_ms_total = 0.0;
};

class NativeKernelCache {
 public:
  /// Returns the loaded kernel, or nullptr when the native tier is
  /// unavailable (no compiler, disabled, or the compile failed) — callers
  /// fall back to bytecode. Concurrent gets of the same key share one
  /// compilation; failures are memoised too (no retry storms).
  std::shared_ptr<const NativeKernel> get(const CompiledKernel& kernel,
                                          Precision precision,
                                          std::size_t lanes);

  /// Drops the in-process memo (disk cache untouched) — lets tests exercise
  /// the cold/warm disk paths within one process.
  void clear_memory();

  [[nodiscard]] CodegenStats stats() const;
  [[nodiscard]] std::string last_error() const;

  static NativeKernelCache& global();

  /// True when a host compiler was found (resolved once per process).
  static bool compiler_available();
  /// The resolved compiler command ("" when unavailable).
  static std::string compiler_command();
  /// First line of `<cc> --version` ("" when unavailable).
  static std::string compiler_version();
  /// SIMD back end the resolved compiler selects under the emitted flags
  /// ("avx2" / "neon" / "scalar"; "" when unavailable).
  static std::string target_simd_arch();
  /// Disk cache directory (created on demand by get()).
  static std::string cache_dir();

 private:
  struct Entry;
  std::shared_ptr<const NativeKernel> load_or_compile(
      const std::string& source, const std::string& hash,
      const CompiledKernel& kernel, Precision precision, std::size_t lanes,
      bool* disk_hit, bool* repaired, double* compile_ms, std::string* error);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> memo_;
  CodegenStats stats_;
  std::string last_error_;
};

/// Resolves a requested tier to the one a machine will run: kAuto becomes
/// kNative when a compiler is available (else kBytecode, without touching
/// the cache), and an explicit kNative that cannot be satisfied falls back
/// to kBytecode (counted in CodegenStats::fallbacks). On a kNative result
/// `*out_native` holds the loaded kernel.
[[nodiscard]] ExecTier resolve_exec_tier(
    ExecTier requested, const CompiledKernel& kernel, Precision precision,
    std::size_t lanes, std::shared_ptr<const NativeKernel>* out_native);

}  // namespace citl::cgra
