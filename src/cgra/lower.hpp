// Lowering: kernel AST -> SCAR dataflow graph.
#pragma once

#include <string_view>

#include "cgra/ast.hpp"
#include "cgra/ir.hpp"

namespace citl::cgra {

/// Lowers a parsed kernel into a dataflow graph, performing constant folding
/// and SSA renaming. Throws CompileError on semantic problems (use of
/// undeclared variables, assignments to params, non-constant state
/// initialisers, more than one pipeline_split, ...).
[[nodiscard]] Dfg lower(const Program& program);

/// Convenience: parse + lower + validate in one step.
[[nodiscard]] Dfg compile_to_dfg(std::string_view source);

}  // namespace citl::cgra
