#include "cgra/lower.hpp"

#include <cmath>
#include <map>
#include <optional>

#include "cgra/parser.hpp"
#include "core/error.hpp"

namespace citl::cgra {

namespace {

class Lowerer {
 public:
  Dfg run(const Program& prog) {
    for (const Stmt& s : prog.stmts) lower_stmt(s);
    finalise_states();
    dfg_.validate();
    return std::move(dfg_);
  }

 private:
  struct Symbol {
    NodeId value = kNoNode;
    bool is_state = false;
    bool is_param = false;
  };

  [[noreturn]] void fail(const std::string& msg, int line, int col) const {
    throw CompileError(msg, line, col);
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kPipelineSplit: {
        if (stage_ == 1) fail("only one pipeline_split allowed", s.line, s.column);
        stage_ = 1;
        return;
      }
      case Stmt::Kind::kCallStmt: {
        const NodeId addr = lower_expr(*s.address);
        const NodeId val = lower_expr(*s.value);
        dfg_.add_store(addr, val, stage_);
        return;
      }
      case Stmt::Kind::kDecl: {
        if (symbols_.contains(s.name)) {
          fail("redeclaration of '" + s.name + "'", s.line, s.column);
        }
        switch (s.storage) {
          case Stmt::Storage::kParam: {
            if (stage_ != 0) fail("params must be declared before pipeline_split",
                                  s.line, s.column);
            const double init = require_const_init(s);
            const NodeId id = dfg_.add_param(s.name, init);
            symbols_[s.name] = Symbol{id, false, true};
            return;
          }
          case Stmt::Storage::kState: {
            if (stage_ != 0) fail("states must be declared before pipeline_split",
                                  s.line, s.column);
            const double init = require_const_init(s);
            const NodeId id = dfg_.add_state(s.name, init);
            symbols_[s.name] = Symbol{id, true, false};
            return;
          }
          case Stmt::Storage::kLocal: {
            if (!s.value) {
              fail("local '" + s.name + "' needs an initialiser", s.line,
                   s.column);
            }
            const NodeId id = lower_expr(*s.value);
            symbols_[s.name] = Symbol{id, false, false};
            return;
          }
        }
        return;
      }
      case Stmt::Kind::kAssign: {
        auto it = symbols_.find(s.name);
        if (it == symbols_.end()) {
          fail("assignment to undeclared '" + s.name + "'", s.line, s.column);
        }
        if (it->second.is_param) {
          fail("cannot assign to param '" + s.name + "'", s.line, s.column);
        }
        it->second.value = lower_expr(*s.value);
        return;
      }
    }
  }

  double require_const_init(const Stmt& s) {
    if (!s.value) return 0.0;
    const std::optional<double> c = fold_expr(*s.value);
    if (!c) {
      fail("initialiser of '" + s.name + "' must be a constant expression",
           s.line, s.column);
    }
    return *c;
  }

  /// Compile-time evaluation of constant expressions (for initialisers).
  std::optional<double> fold_expr(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return e.number;
      case Expr::Kind::kUnary: {
        const auto v = fold_expr(*e.args[0]);
        return v ? std::optional<double>(-*v) : std::nullopt;
      }
      case Expr::Kind::kBinary: {
        const auto a = fold_expr(*e.args[0]);
        const auto b = fold_expr(*e.args[1]);
        if (!a || !b) return std::nullopt;
        return fold_binary(e.name, *a, *b);
      }
      default:
        return std::nullopt;
    }
  }

  static std::optional<double> fold_binary(const std::string& op, double a,
                                           double b) {
    if (op == "+") return a + b;
    if (op == "-") return a - b;
    if (op == "*") return a * b;
    if (op == "/") return b != 0.0 ? std::optional<double>(a / b) : std::nullopt;
    if (op == "<") return a < b ? 1.0 : 0.0;
    if (op == "<=") return a <= b ? 1.0 : 0.0;
    if (op == ">") return a > b ? 1.0 : 0.0;
    if (op == ">=") return a >= b ? 1.0 : 0.0;
    if (op == "==") return a == b ? 1.0 : 0.0;
    if (op == "!=") return a != b ? 1.0 : 0.0;
    return std::nullopt;
  }

  [[nodiscard]] bool is_const(NodeId id) const {
    return dfg_.node(id).kind == OpKind::kConst;
  }
  [[nodiscard]] double const_of(NodeId id) const {
    return dfg_.node(id).constant;
  }

  NodeId binary(OpKind k, const std::string& op, NodeId a, NodeId b) {
    // Fold literal operands so the context memories stay lean.
    if (is_const(a) && is_const(b)) {
      const auto f = fold_binary(op, const_of(a), const_of(b));
      if (f) return dfg_.add_const(*f);
    }
    return dfg_.add_binary(k, a, b, stage_);
  }

  NodeId lower_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return dfg_.add_const(e.number);
      case Expr::Kind::kVar: {
        const auto it = symbols_.find(e.name);
        if (it == symbols_.end()) {
          fail("use of undeclared '" + e.name + "'", e.line, e.column);
        }
        return it->second.value;
      }
      case Expr::Kind::kUnary: {
        const NodeId a = lower_expr(*e.args[0]);
        if (is_const(a)) return dfg_.add_const(-const_of(a));
        return dfg_.add_unary(OpKind::kNeg, a, stage_);
      }
      case Expr::Kind::kBinary: {
        const NodeId a = lower_expr(*e.args[0]);
        const NodeId b = lower_expr(*e.args[1]);
        if (e.name == "+") return binary(OpKind::kAdd, e.name, a, b);
        if (e.name == "-") return binary(OpKind::kSub, e.name, a, b);
        if (e.name == "*") return binary(OpKind::kMul, e.name, a, b);
        if (e.name == "/") return binary(OpKind::kDiv, e.name, a, b);
        if (e.name == "<") return binary(OpKind::kCmpLt, e.name, a, b);
        if (e.name == "<=") return binary(OpKind::kCmpLe, e.name, a, b);
        // a > b  <=>  b < a ;  a >= b  <=>  b <= a
        if (e.name == ">") return binary(OpKind::kCmpLt, "<", b, a);
        if (e.name == ">=") return binary(OpKind::kCmpLe, "<=", b, a);
        if (e.name == "==") return binary(OpKind::kCmpEq, e.name, a, b);
        if (e.name == "!=") {
          const NodeId eq = binary(OpKind::kCmpEq, "==", a, b);
          if (is_const(eq)) return dfg_.add_const(const_of(eq) == 0.0 ? 1 : 0);
          return dfg_.add_select(eq, dfg_.add_const(0.0), dfg_.add_const(1.0),
                                 stage_);
        }
        fail("unknown operator '" + e.name + "'", e.line, e.column);
      }
      case Expr::Kind::kTernary: {
        const NodeId c = lower_expr(*e.args[0]);
        const NodeId a = lower_expr(*e.args[1]);
        const NodeId b = lower_expr(*e.args[2]);
        if (is_const(c)) return const_of(c) != 0.0 ? a : b;
        return dfg_.add_select(c, a, b, stage_);
      }
      case Expr::Kind::kCall:
        return lower_call(e);
    }
    fail("internal: unhandled expression", e.line, e.column);
  }

  NodeId lower_call(const Expr& e) {
    auto expect_args = [&](std::size_t n) {
      if (e.args.size() != n) {
        fail(e.name + " expects " + std::to_string(n) + " argument(s)",
             e.line, e.column);
      }
    };
    if (e.name == "sensor_read") {
      expect_args(1);
      return dfg_.add_load(lower_expr(*e.args[0]), stage_);
    }
    if (e.name == "sqrtf") {
      expect_args(1);
      const NodeId a = lower_expr(*e.args[0]);
      if (is_const(a) && const_of(a) >= 0.0) {
        return dfg_.add_const(std::sqrt(const_of(a)));
      }
      return dfg_.add_unary(OpKind::kSqrt, a, stage_);
    }
    if (e.name == "fabsf") {
      expect_args(1);
      const NodeId a = lower_expr(*e.args[0]);
      if (is_const(a)) return dfg_.add_const(std::fabs(const_of(a)));
      return dfg_.add_unary(OpKind::kAbs, a, stage_);
    }
    if (e.name == "floorf") {
      expect_args(1);
      const NodeId a = lower_expr(*e.args[0]);
      if (is_const(a)) return dfg_.add_const(std::floor(const_of(a)));
      return dfg_.add_unary(OpKind::kFloor, a, stage_);
    }
    if (e.name == "sinf") {
      expect_args(1);
      const NodeId a = lower_expr(*e.args[0]);
      if (is_const(a)) return dfg_.add_const(std::sin(const_of(a)));
      return dfg_.add_unary(OpKind::kSin, a, stage_);
    }
    if (e.name == "cosf") {
      expect_args(1);
      const NodeId a = lower_expr(*e.args[0]);
      if (is_const(a)) return dfg_.add_const(std::cos(const_of(a)));
      return dfg_.add_unary(OpKind::kCos, a, stage_);
    }
    if (e.name == "fminf") {
      expect_args(2);
      return dfg_.add_binary(OpKind::kMin, lower_expr(*e.args[0]),
                             lower_expr(*e.args[1]), stage_);
    }
    if (e.name == "fmaxf") {
      expect_args(2);
      return dfg_.add_binary(OpKind::kMax, lower_expr(*e.args[0]),
                             lower_expr(*e.args[1]), stage_);
    }
    fail("unknown builtin '" + e.name + "'", e.line, e.column);
  }

  void finalise_states() {
    // The last value bound to a state variable becomes next iteration's
    // state; an unassigned state keeps its value (identity update).
    for (const StateVar& sv : dfg_.states()) {
      const Symbol& sym = symbols_.at(sv.name);
      dfg_.set_state_update(sv.name, sym.value);
    }
  }

  Dfg dfg_;
  std::map<std::string, Symbol> symbols_;
  int stage_ = 0;
};

}  // namespace

Dfg lower(const Program& program) {
  Lowerer l;
  return l.run(program);
}

Dfg compile_to_dfg(std::string_view source) { return lower(parse(source)); }

}  // namespace citl::cgra
