// CGRA operator set.
//
// The paper's CGRA uses "basic floating point and square-root operators"
// (§III-C) plus a SensorAccess port for IO. Operators are grouped into
// classes so an architecture description can say which classes each PE
// implements (e.g. only some PEs carry the expensive divider/rooter, only
// the IO PE talks to the sensor bus).
#pragma once

#include <cstdint>
#include <string_view>

namespace citl::cgra {

enum class OpKind : std::uint8_t {
  kConst,    // literal
  kParam,    // runtime parameter (set via the parameter interface)
  kState,    // loop-carried value (previous iteration's update)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kSqrt,
  kNeg,
  kAbs,
  kMin,
  kMax,
  kFloor,
  kSin,      // CORDIC sine
  kCos,      // CORDIC cosine
  kCmpLt,    // a < b  -> 1.0 / 0.0
  kCmpLe,
  kCmpEq,
  kSelect,   // c != 0 ? a : b (predicated execution — CGRAs have no branches)
  kLoad,     // sensor_read(addr)
  kStore,    // sensor_write(addr, value); value result = value (pass-through)
  kMove,     // routing hop inserted by the scheduler
};

/// Hardware capability classes a PE may implement.
enum class OpClass : std::uint8_t {
  kAlu,      // add/sub/neg/abs/min/max/floor/compare/select/const
  kMul,      // multiplier
  kDivSqrt,  // iterative divider & square-rooter
  kCordic,   // CORDIC rotator for trigonometric functions (§III-C)
  kMem,      // sensor bus access (load/store)
  kRoute,    // pass-through register (every PE has this)
};

/// Functional-unit name of a capability class (attribution tables,
/// exposition labels).
[[nodiscard]] constexpr std::string_view op_class_name(OpClass c) noexcept {
  switch (c) {
    case OpClass::kAlu: return "alu";
    case OpClass::kMul: return "mul";
    case OpClass::kDivSqrt: return "divsqrt";
    case OpClass::kCordic: return "cordic";
    case OpClass::kMem: return "mem";
    case OpClass::kRoute: return "route";
  }
  return "?";
}

[[nodiscard]] constexpr OpClass op_class(OpKind k) noexcept {
  switch (k) {
    case OpKind::kMul:
      return OpClass::kMul;
    case OpKind::kDiv:
    case OpKind::kSqrt:
      return OpClass::kDivSqrt;
    case OpKind::kSin:
    case OpKind::kCos:
      return OpClass::kCordic;
    case OpKind::kLoad:
    case OpKind::kStore:
      return OpClass::kMem;
    case OpKind::kMove:
      return OpClass::kRoute;
    default:
      return OpClass::kAlu;
  }
}

/// Number of value operands the op consumes.
[[nodiscard]] constexpr unsigned op_arity(OpKind k) noexcept {
  switch (k) {
    case OpKind::kConst:
    case OpKind::kParam:
    case OpKind::kState:
      return 0;
    case OpKind::kNeg:
    case OpKind::kAbs:
    case OpKind::kSqrt:
    case OpKind::kFloor:
    case OpKind::kSin:
    case OpKind::kCos:
    case OpKind::kLoad:
    case OpKind::kMove:
      return 1;
    case OpKind::kSelect:
      return 3;
    default:
      return 2;
  }
}

[[nodiscard]] constexpr bool op_commutative(OpKind k) noexcept {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kMul:
    case OpKind::kMin:
    case OpKind::kMax:
    case OpKind::kCmpEq:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr std::string_view op_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kConst: return "const";
    case OpKind::kParam: return "param";
    case OpKind::kState: return "state";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kSqrt: return "sqrt";
    case OpKind::kNeg: return "neg";
    case OpKind::kAbs: return "abs";
    case OpKind::kMin: return "min";
    case OpKind::kMax: return "max";
    case OpKind::kFloor: return "floor";
    case OpKind::kSin: return "sin";
    case OpKind::kCos: return "cos";
    case OpKind::kCmpLt: return "cmplt";
    case OpKind::kCmpLe: return "cmple";
    case OpKind::kCmpEq: return "cmpeq";
    case OpKind::kSelect: return "select";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kMove: return "move";
  }
  return "?";
}

/// True for ops that are pure dataflow nodes (no side effects, no sources).
[[nodiscard]] constexpr bool op_is_source(OpKind k) noexcept {
  return k == OpKind::kConst || k == OpKind::kParam || k == OpKind::kState;
}

[[nodiscard]] constexpr bool op_has_side_effect(OpKind k) noexcept {
  return k == OpKind::kStore || k == OpKind::kLoad;
}

}  // namespace citl::cgra
