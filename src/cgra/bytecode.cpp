#include "cgra/bytecode.hpp"

#include <cmath>

#include "cgra/batch.hpp"
#include "cgra/exec.hpp"
#include "core/error.hpp"

namespace citl::cgra {

namespace {

[[nodiscard]] BcOp bc_op(OpKind k) {
  switch (k) {
    case OpKind::kConst: return BcOp::kConst;
    case OpKind::kParam: return BcOp::kParam;
    case OpKind::kState: return BcOp::kState;
    case OpKind::kLoad: return BcOp::kLoad;
    case OpKind::kStore: return BcOp::kStore;
    case OpKind::kMove: return BcOp::kMove;
    case OpKind::kAdd: return BcOp::kAdd;
    case OpKind::kSub: return BcOp::kSub;
    case OpKind::kMul: return BcOp::kMul;
    case OpKind::kDiv: return BcOp::kDiv;
    case OpKind::kSqrt: return BcOp::kSqrt;
    case OpKind::kNeg: return BcOp::kNeg;
    case OpKind::kAbs: return BcOp::kAbs;
    case OpKind::kMin: return BcOp::kMin;
    case OpKind::kMax: return BcOp::kMax;
    case OpKind::kFloor: return BcOp::kFloor;
    case OpKind::kSin: return BcOp::kSin;
    case OpKind::kCos: return BcOp::kCos;
    case OpKind::kCmpLt: return BcOp::kCmpLt;
    case OpKind::kCmpLe: return BcOp::kCmpLe;
    case OpKind::kCmpEq: return BcOp::kCmpEq;
    case OpKind::kSelect: return BcOp::kSelect;
  }
  CITL_CHECK_MSG(false, "unloweable OpKind");
  return BcOp::kHalt;
}

/// Lane maps (mirrors batch.cpp: dense passes index rows directly, masked
/// passes indirect through the active-lane list).
struct IdentityMap {
  std::size_t operator()(std::size_t k) const noexcept { return k; }
};
struct IndexMap {
  const std::uint32_t* ids;
  std::size_t operator()(std::size_t k) const noexcept { return ids[k]; }
};

/// Bus policies: the serial machine's lane-less SensorBus and the batched
/// machine's lane-indexed bus, both behind the interpreter's address decode.
struct SerialBusIo {
  SensorBus* bus;
  double read(std::size_t, double addr) const {
    const DecodedAddress da = decode_address(addr);
    return bus->read(da.region, da.offset);
  }
  void write(std::size_t, double addr, double value) const {
    const DecodedAddress da = decode_address(addr);
    bus->write(da.region, da.offset, value);
  }
};
struct LaneBusIo {
  LaneSensorBus* bus;
  double read(std::size_t lane, double addr) const {
    const DecodedAddress da = decode_address(addr);
    return bus->read(lane, da.region, da.offset);
  }
  void write(std::size_t lane, double addr, double value) const {
    const DecodedAddress da = decode_address(addr);
    bus->write(lane, da.region, da.offset, value);
  }
};

template <typename F>
[[nodiscard]] F* scratch_base(const BcContext& ctx) noexcept {
  if constexpr (std::is_same_v<F, float>) {
    return ctx.scratch_f;
  } else {
    return ctx.scratch_d;
  }
}

/// Batched CORDIC, bit-identical to BatchedCgraMachine::eval_cordic (and,
/// per lane, to detail::cordic_rotate): reduce lane-by-lane, then rotate all
/// lanes branch-free with the same operation sequence as the scalar rotation.
template <typename F, typename LaneMap>
void bc_cordic(bool want_sin, const double* in, double* out, F* scratch,
               std::size_t lanes, const LaneMap& lm, std::size_t n_active) {
  F* const x = scratch;
  F* const y = x + lanes;
  F* const zr = y + lanes;
  F* const flip = zr + lanes;
  for (std::size_t k = 0; k < n_active; ++k) {
    detail::cordic_reduce(static_cast<F>(in[lm(k)]), &zr[k], &flip[k]);
    x[k] = F(detail::kCordicGainInv);
    y[k] = F(0);
  }
  F pow2 = F(1);
  for (int i = 0; i < detail::kCordicIters; ++i) {
    const F at = F(detail::kCordicAtan[i]);
    for (std::size_t k = 0; k < n_active; ++k) {
      const F xs = x[k] * pow2;
      const F ys = y[k] * pow2;
      const bool pos = zr[k] >= F(0);
      const F xn = pos ? x[k] - ys : x[k] + ys;
      const F yn = pos ? y[k] + xs : y[k] - xs;
      const F zn = pos ? zr[k] - at : zr[k] + at;
      x[k] = xn;
      y[k] = yn;
      zr[k] = zn;
    }
    pow2 = pow2 * F(0.5);
  }
  if (want_sin) {
    for (std::size_t k = 0; k < n_active; ++k) {
      out[lm(k)] = static_cast<double>(y[k]);
    }
  } else {
    for (std::size_t k = 0; k < n_active; ++k) {
      out[lm(k)] = static_cast<double>(flip[k] * x[k]);
    }
  }
}

// The VM core. Dispatch is a computed goto on GNU-compatible compilers (one
// indirect jump per instruction, no bounds re-check, no switch lowering);
// elsewhere it degrades to a switch in a loop with identical semantics. The
// handler bodies are written once and expanded for whichever dispatcher the
// toolchain supports.
#if defined(__GNUC__) || defined(__clang__)
#define CITL_BC_GOTO 1
#endif

template <typename F, typename LaneMap, typename BusIo>
void execute(const std::vector<BytecodeProgram::Instr>& instrs,
             const BcContext& ctx, BusIo io, const LaneMap& lm,
             std::size_t n) {
  const std::size_t lanes = ctx.lanes;
  F* const scratch = scratch_base<F>(ctx);
  const BytecodeProgram::Instr* pc = instrs.data();

  // Operand row of the current instruction: the pre-resolved bank + offset.
#define CITL_BC_ROW(WHICH) \
  (pc->WHICH##_pipe ? ctx.pipe_regs + pc->WHICH : ctx.values + pc->WHICH)

#if CITL_BC_GOTO
  static const void* const kLabels[] = {
      &&l_kConst, &&l_kParam, &&l_kState, &&l_kLoad,  &&l_kStore, &&l_kMove,
      &&l_kAdd,   &&l_kSub,   &&l_kMul,   &&l_kDiv,   &&l_kSqrt,  &&l_kNeg,
      &&l_kAbs,   &&l_kMin,   &&l_kMax,   &&l_kFloor, &&l_kSin,   &&l_kCos,
      &&l_kCmpLt, &&l_kCmpLe, &&l_kCmpEq, &&l_kSelect, &&l_kHalt};
#define CITL_BC_CASE(NAME) l_##NAME:
#define CITL_BC_NEXT()                                \
  do {                                                \
    ++pc;                                             \
    goto* kLabels[static_cast<std::size_t>(pc->op)];  \
  } while (0)
  goto* kLabels[static_cast<std::size_t>(pc->op)];
#else
#define CITL_BC_CASE(NAME) case BcOp::NAME:
#define CITL_BC_NEXT() \
  ++pc;                \
  continue
  for (;;) {
    switch (pc->op) {
#endif

  CITL_BC_CASE(kConst) {
    const double q = static_cast<double>(static_cast<F>(pc->konst));
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) out[lm(k)] = q;
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kParam) {
    const double* const src = ctx.param_vals + pc->a;
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) out[lm(k)] = src[lm(k)];
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kState) {
    const double* const src = ctx.state_vals + pc->a;
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) out[lm(k)] = src[lm(k)];
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kLoad) {
    const double* const a = CITL_BC_ROW(a);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(static_cast<F>(io.read(l, a[l])));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kStore) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      io.write(l, a[l], b[l]);
      out[l] = b[l];
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kMove) {
    const double* const a = CITL_BC_ROW(a);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) out[lm(k)] = a[lm(k)];
    CITL_BC_NEXT();
  }
#define CITL_BC_BIN(NAME, OP)                                     \
  CITL_BC_CASE(NAME) {                                            \
    const double* const a = CITL_BC_ROW(a);                       \
    const double* const b = CITL_BC_ROW(b);                       \
    double* const out = ctx.values + pc->dst;                     \
    for (std::size_t k = 0; k < n; ++k) {                         \
      const std::size_t l = lm(k);                                \
      out[l] = static_cast<double>(static_cast<F>(a[l])           \
                                       OP static_cast<F>(b[l]));  \
    }                                                             \
    CITL_BC_NEXT();                                               \
  }
  CITL_BC_BIN(kAdd, +)
  CITL_BC_BIN(kSub, -)
  CITL_BC_BIN(kMul, *)
  CITL_BC_BIN(kDiv, /)
#undef CITL_BC_BIN
  CITL_BC_CASE(kSqrt) {
    const double* const a = CITL_BC_ROW(a);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(std::sqrt(static_cast<F>(a[l])));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kNeg) {
    const double* const a = CITL_BC_ROW(a);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(-static_cast<F>(a[l]));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kAbs) {
    const double* const a = CITL_BC_ROW(a);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(std::fabs(static_cast<F>(a[l])));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kMin) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(
          std::fmin(static_cast<F>(a[l]), static_cast<F>(b[l])));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kMax) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(
          std::fmax(static_cast<F>(a[l]), static_cast<F>(b[l])));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kFloor) {
    const double* const a = CITL_BC_ROW(a);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<double>(std::floor(static_cast<F>(a[l])));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kSin) {
    bc_cordic<F>(true, CITL_BC_ROW(a), ctx.values + pc->dst, scratch, lanes,
                 lm, n);
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kCos) {
    bc_cordic<F>(false, CITL_BC_ROW(a), ctx.values + pc->dst, scratch, lanes,
                 lm, n);
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kCmpLt) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<F>(a[l]) < static_cast<F>(b[l]) ? 1.0 : 0.0;
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kCmpLe) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<F>(a[l]) <= static_cast<F>(b[l]) ? 1.0 : 0.0;
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kCmpEq) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<F>(a[l]) == static_cast<F>(b[l]) ? 1.0 : 0.0;
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kSelect) {
    const double* const a = CITL_BC_ROW(a);
    const double* const b = CITL_BC_ROW(b);
    const double* const c = CITL_BC_ROW(c);
    double* const out = ctx.values + pc->dst;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t l = lm(k);
      out[l] = static_cast<F>(a[l]) != F(0)
                   ? static_cast<double>(static_cast<F>(b[l]))
                   : static_cast<double>(static_cast<F>(c[l]));
    }
    CITL_BC_NEXT();
  }
  CITL_BC_CASE(kHalt) { return; }
#if !CITL_BC_GOTO
    }  // switch
  }    // for
#endif

#undef CITL_BC_ROW
#undef CITL_BC_CASE
#undef CITL_BC_NEXT
}

}  // namespace

BytecodeProgram::BytecodeProgram(const CompiledKernel& kernel,
                                 std::size_t lanes) {
  const Dfg& g = kernel.dfg;
  const auto row = [&](NodeId id) {
    return static_cast<std::uint32_t>(static_cast<std::size_t>(id) * lanes);
  };
  // Node -> param/state slot (mirrors the machines' slot tables).
  std::vector<int> param_slot(g.size(), -1);
  std::vector<int> state_slot(g.size(), -1);
  const auto& params = g.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    param_slot[static_cast<std::size_t>(params[i].node)] = static_cast<int>(i);
  }
  const auto& states = g.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_slot[static_cast<std::size_t>(states[i].node)] = static_cast<int>(i);
  }

  const std::vector<NodeId> topo = g.topo_order();
  instrs_.reserve(topo.size() + 1);
  for (NodeId id : topo) {
    const Node& node = g.node(id);
    Instr ins;
    ins.op = bc_op(node.kind);
    ins.dst = row(id);
    switch (node.kind) {
      case OpKind::kConst:
        ins.konst = node.constant;
        break;
      case OpKind::kParam:
        ins.a = static_cast<std::uint32_t>(
            static_cast<std::size_t>(
                param_slot[static_cast<std::size_t>(id)]) *
            lanes);
        break;
      case OpKind::kState:
        ins.a = static_cast<std::uint32_t>(
            static_cast<std::size_t>(
                state_slot[static_cast<std::size_t>(id)]) *
            lanes);
        break;
      default: {
        const unsigned arity = node.arity();
        if (arity > 0) {
          ins.a = row(node.args[0]);
          ins.a_pipe = g.is_pipeline_edge(node.args[0], id) ? 1 : 0;
        }
        if (arity > 1) {
          ins.b = row(node.args[1]);
          ins.b_pipe = g.is_pipeline_edge(node.args[1], id) ? 1 : 0;
        }
        if (arity > 2) {
          ins.c = row(node.args[2]);
          ins.c_pipe = g.is_pipeline_edge(node.args[2], id) ? 1 : 0;
        }
        break;
      }
    }
    instrs_.push_back(ins);
  }
  instrs_.push_back(Instr{});  // kHalt
}

void BytecodeProgram::run_dense(Precision precision, const BcContext& ctx,
                                LaneSensorBus& bus) const {
  if (precision == Precision::kFloat32) {
    execute<float>(instrs_, ctx, LaneBusIo{&bus}, IdentityMap{}, ctx.lanes);
  } else {
    execute<double>(instrs_, ctx, LaneBusIo{&bus}, IdentityMap{}, ctx.lanes);
  }
}

void BytecodeProgram::run_masked(Precision precision, const BcContext& ctx,
                                 LaneSensorBus& bus,
                                 const std::uint32_t* lane_ids,
                                 std::size_t n_active) const {
  if (precision == Precision::kFloat32) {
    execute<float>(instrs_, ctx, LaneBusIo{&bus}, IndexMap{lane_ids},
                   n_active);
  } else {
    execute<double>(instrs_, ctx, LaneBusIo{&bus}, IndexMap{lane_ids},
                    n_active);
  }
}

void BytecodeProgram::run_serial(Precision precision, const BcContext& ctx,
                                 SensorBus& bus) const {
  if (precision == Precision::kFloat32) {
    execute<float>(instrs_, ctx, SerialBusIo{&bus}, IdentityMap{}, 1);
  } else {
    execute<double>(instrs_, ctx, SerialBusIo{&bus}, IdentityMap{}, 1);
  }
}

}  // namespace citl::cgra
