// CGRA architecture description (§III-C).
//
// A rectangular grid of processing elements (PEs), each with a configurable
// set of operator classes, connected to its four neighbours. The framework
// is agnostic to the grid size ("3x3 or 5x5") and interconnect; so is our
// scheduler — the architecture is pure data.
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/error.hpp"
#include "cgra/op.hpp"

namespace citl::cgra {

/// Index of a PE in the grid.
struct PeId {
  int row = 0;
  int col = 0;
  friend bool operator==(const PeId&, const PeId&) = default;
};

/// Per-operator-kind latency table [CGRA clock cycles].
struct LatencyTable {
  // Calibrated against the paper's schedule lengths — with these values the
  // beam kernel on the 5x5 grid schedules to 87/98/116 ticks pipelined for
  // 1/4/8 bunches (paper: 93/99/111) and 150 ticks plain for 8 bunches
  // (paper: 128); see EXPERIMENTS.md (T-sched).
  unsigned alu = 2;        // add/sub/neg/abs/min/max/compare/select/floor
  unsigned mul = 3;
  unsigned div = 12;
  unsigned sqrt = 14;
  unsigned load = 10;      // SensorAccess round trip
  unsigned store = 1;
  unsigned cordic = 18;    // iterative CORDIC rotator
  unsigned route_hop = 1;  // one interconnect register per hop
  unsigned source = 1;     // const/param/state fetch from context/regfile

  [[nodiscard]] unsigned of(OpKind k) const noexcept {
    switch (k) {
      case OpKind::kConst:
      case OpKind::kParam:
      case OpKind::kState:
        return source;
      case OpKind::kMul:
        return mul;
      case OpKind::kDiv:
        return div;
      case OpKind::kSqrt:
        return sqrt;
      case OpKind::kSin:
      case OpKind::kCos:
        return cordic;
      case OpKind::kLoad:
        return load;
      case OpKind::kStore:
        return store;
      case OpKind::kMove:
        return route_hop;
      default:
        return alu;
    }
  }
};

/// Capabilities of one PE.
struct PeCapabilities {
  bool alu = true;
  bool mul = true;
  bool divsqrt = false;
  bool cordic = false;
  bool mem = false;

  [[nodiscard]] bool supports(OpClass c) const noexcept {
    switch (c) {
      case OpClass::kAlu: return alu;
      case OpClass::kMul: return mul;
      case OpClass::kDivSqrt: return divsqrt;
      case OpClass::kCordic: return cordic;
      case OpClass::kMem: return mem;
      case OpClass::kRoute: return true;  // every PE can forward operands
    }
    return false;
  }
};

/// Full architecture description.
struct CgraArch {
  int rows = 0;
  int cols = 0;
  std::vector<PeCapabilities> pes;  // row-major
  LatencyTable latency;
  unsigned route_ports_per_pe = 2;  // parallel pass-throughs per PE per cycle
  double clock_hz = 111.0e6;        // paper: CGRA clock 111 MHz

  [[nodiscard]] int pe_count() const noexcept { return rows * cols; }
  [[nodiscard]] int index(PeId p) const noexcept {
    return p.row * cols + p.col;
  }
  [[nodiscard]] PeId pe_at(int idx) const noexcept {
    return PeId{idx / cols, idx % cols};
  }
  [[nodiscard]] const PeCapabilities& caps(PeId p) const {
    CITL_CHECK(p.row >= 0 && p.row < rows && p.col >= 0 && p.col < cols);
    return pes[static_cast<std::size_t>(index(p))];
  }
  /// Manhattan distance — the number of interconnect hops between PEs under
  /// the nearest-neighbour mesh of the paper's overlay.
  [[nodiscard]] static int distance(PeId a, PeId b) noexcept {
    return std::abs(a.row - b.row) + std::abs(a.col - b.col);
  }

  /// Validates internal consistency; throws ConfigError on problems.
  void validate() const {
    if (rows <= 0 || cols <= 0) throw ConfigError("CGRA grid must be non-empty");
    if (pes.size() != static_cast<std::size_t>(pe_count()))
      throw ConfigError("PE capability table size mismatch");
    bool any_mem = false, any_div = false;
    for (const auto& c : pes) {
      any_mem |= c.mem;
      any_div |= c.divsqrt;
    }
    if (!any_mem)
      throw ConfigError("at least one PE must have sensor-bus access");
    (void)any_div;
  }
};

/// Builds an R×C grid: all PEs carry ALU+MUL; divider/rooter on the main
/// diagonal; sensor access on the west column (nearest the IO pins).
[[nodiscard]] inline CgraArch make_grid(int rows, int cols) {
  CgraArch a;
  a.rows = rows;
  a.cols = cols;
  a.pes.resize(static_cast<std::size_t>(rows * cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      auto& pe = a.pes[static_cast<std::size_t>(r * cols + c)];
      pe.divsqrt = (r == c);
      pe.cordic = (r + c == rows - 1);  // CORDIC rotators on the anti-diagonal
      pe.mem = (c == 0);
    }
  }
  a.validate();
  return a;
}

/// The configurations the paper names (§III-C).
[[nodiscard]] inline CgraArch grid_3x3() { return make_grid(3, 3); }
[[nodiscard]] inline CgraArch grid_4x4() { return make_grid(4, 4); }
[[nodiscard]] inline CgraArch grid_5x5() { return make_grid(5, 5); }

}  // namespace citl::cgra
