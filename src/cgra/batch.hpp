// Batched lane-parallel CGRA execution (structure-of-arrays).
//
// A sweep runs the *same* compiled kernel over many operating points; the
// overlay exploits the tracking map's parallelism in hardware, and this is
// the software twin of that idea: BatchedCgraMachine executes N independent
// lanes of one CompiledKernel in lockstep. Node values live in
// structure-of-arrays layout — values_[node * lanes + lane], contiguous per
// node — so evaluating one dataflow node across all lanes is a tight,
// auto-vectorizable inner loop instead of N interpreter walks.
//
// Determinism contract (docs/BATCHING.md): every lane computes bit-identical
// results to a single CgraMachine running the same inputs. The per-operator
// arithmetic is shared (cgra/exec.hpp), the CORDIC is evaluated branch-free
// across lanes with the same operation sequence as the scalar rotation, and
// sensor-bus traffic is issued per lane in ascending lane order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cgra/machine.hpp"
#include "cgra/schedule.hpp"
#include "cgra/sensor.hpp"
#include "core/aligned.hpp"

namespace citl::cgra {

/// Lane-indexed sensor bus: the batched machine's IO interface. Each lane
/// must see its own scenario's buffers, so loads/stores carry the lane.
class LaneSensorBus {
 public:
  virtual ~LaneSensorBus() = default;
  virtual double read(std::size_t lane, SensorRegion region,
                      double offset) = 0;
  virtual void write(std::size_t lane, SensorRegion region, double offset,
                     double value) = 0;
};

/// Adapts N ordinary per-lane SensorBus instances (e.g. each framework's
/// private bus) to the lane-indexed interface.
class PerLaneBusAdapter final : public LaneSensorBus {
 public:
  explicit PerLaneBusAdapter(std::vector<SensorBus*> buses)
      : buses_(std::move(buses)) {}

  double read(std::size_t lane, SensorRegion region, double offset) override {
    CITL_CHECK(lane < buses_.size());
    return buses_[lane]->read(region, offset);
  }
  void write(std::size_t lane, SensorRegion region, double offset,
             double value) override {
    CITL_CHECK(lane < buses_.size());
    buses_[lane]->write(region, offset, value);
  }

 private:
  std::vector<SensorBus*> buses_;
};

class BatchedCgraMachine final : public BeamModel {
 public:
  /// The machine keeps references to the kernel and the bus; both must
  /// outlive it. `bus` must serve at least `lanes` lanes. `tier` picks the
  /// execution back end (exec_tier.hpp); kAuto and the no-compiler fallback
  /// resolve at construction.
  BatchedCgraMachine(const CompiledKernel& kernel, std::size_t lanes,
                     LaneSensorBus& bus,
                     Precision precision = Precision::kFloat32,
                     ExecTier tier = ExecTier::kInterpreter);
  ~BatchedCgraMachine() override;

  [[nodiscard]] const CompiledKernel& kernel() const noexcept override {
    return *kernel_;
  }
  [[nodiscard]] std::size_t lanes() const noexcept override { return lanes_; }
  [[nodiscard]] ExecTier exec_tier() const noexcept override { return tier_; }

  void reset() override;

  void set_param(ParamHandle h, double value, std::size_t lane) override;
  [[nodiscard]] double param(ParamHandle h, std::size_t lane) const override;
  void set_state(StateHandle h, double value, std::size_t lane) override;
  [[nodiscard]] double state(StateHandle h, std::size_t lane) const override;

  void snapshot_states(std::size_t lane, double* out) const override;
  void restore_states(std::size_t lane, const double* values) override;
  void snapshot_pipe_regs(std::size_t lane, double* out) const override;
  void restore_pipe_regs(std::size_t lane, const double* values) override;

  /// One functional iteration on every lane; returns the CGRA clock ticks
  /// one iteration occupies (== schedule length).
  unsigned run_iteration_all_lanes() override;

  /// One functional iteration on a subset of lanes (ascending, no
  /// duplicates); inactive lanes keep their values, states and pipeline
  /// registers untouched. Used when scenarios of one batch end at different
  /// times. Bit-identical to running those lanes full-width.
  unsigned run_iteration_lanes(const std::uint32_t* lane_ids,
                               std::size_t n_active);

  /// Value computed for `node` on `lane` in its most recent iteration.
  [[nodiscard]] double value(NodeId node, std::size_t lane) const;

  /// Batched iterations executed (one per run_iteration_* call).
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_;
  }
  /// Per-lane iteration count (lane_iterations()[l] == iterations lane l ran).
  [[nodiscard]] const std::vector<std::uint64_t>& lane_iterations()
      const noexcept {
    return lane_iterations_;
  }

 private:
  template <typename F, typename LaneMap>
  void run_pass(const LaneMap& lm, std::size_t n);
  template <typename F, typename LaneMap>
  void eval_cordic(const Node& n, const double* in, double* out,
                   const LaneMap& lm, std::size_t n_active);
  template <typename LaneMap>
  void commit(const LaneMap& lm, std::size_t n_active);
  template <typename LaneMap>
  void commit_bookkeeping(const LaneMap& lm, std::size_t n_active);
  template <typename F>
  [[nodiscard]] F* scratch_base() noexcept;
  [[nodiscard]] double quantise(double v) const noexcept;
  void check_lane(std::size_t lane) const;
  void check_handle(bool valid, const char* what) const;

  [[nodiscard]] double* row(NodeId node) noexcept {
    return values_.data() + static_cast<std::size_t>(node) * lanes_;
  }
  [[nodiscard]] const double* operand_row(NodeId consumer,
                                          NodeId producer) const noexcept {
    const std::size_t p = static_cast<std::size_t>(producer) * lanes_;
    return kernel_->dfg.is_pipeline_edge(producer, consumer)
               ? pipe_regs_.data() + p
               : values_.data() + p;
  }

  const CompiledKernel* kernel_;
  LaneSensorBus* bus_;
  Precision precision_;
  std::size_t lanes_;
  // Cache-line aligned: one f64 row (8 lanes) is exactly one line, and row
  // accesses must not straddle lines (core/aligned.hpp).
  core::CacheAlignedVector<double> values_;      ///< [node * lanes + lane]
  core::CacheAlignedVector<double> pipe_regs_;   ///< [node * lanes + lane]
  core::CacheAlignedVector<double> state_vals_;  ///< [state index * lanes + lane]
  core::CacheAlignedVector<double> param_vals_;  ///< [param index * lanes + lane]
  std::vector<NodeId> topo_;
  std::vector<int> param_slot_;     ///< node id -> param index (or -1)
  std::vector<int> state_slot_;     ///< node id -> state index (or -1)
  std::vector<float> scratch_f_;    ///< 4 * lanes CORDIC scratch (binary32)
  std::vector<double> scratch_d_;   ///< 4 * lanes CORDIC scratch (binary64)
  std::uint64_t iterations_ = 0;
  std::vector<std::uint64_t> lane_iterations_;
  AttributionCounters attribution_counters_;  ///< per-op cycle metrics
  // Obs handles resolved once in the constructor (name lookups take the
  // registry mutex). The per-iteration bookkeeping gates on
  // Registry::enabled() as one branch, so a disabled registry costs a single
  // relaxed load per iteration instead of one per instrument.
  obs::Counter* obs_batched_ = nullptr;
  obs::Counter* obs_lane_iters_ = nullptr;
  obs::Gauge* obs_lanes_active_ = nullptr;
  obs::Counter* obs_iterations_ = nullptr;
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_tier_iters_ = nullptr;
  ExecTier tier_ = ExecTier::kInterpreter;    ///< resolved (never kAuto)
  std::unique_ptr<BytecodeProgram> bytecode_;
  std::shared_ptr<const NativeKernel> native_;
};

}  // namespace citl::cgra
