// Portable explicit-SIMD layer for generated CGRA kernels.
//
// The native codegen tier (cgra/codegen.hpp) emits straight-line C++ that
// evaluates one dataflow node across a block of SoA lanes per statement.
// This header gives that code one vocabulary over three back ends:
//
//   CITL_SIMD_AVX2   — x86-64 AVX2: 4 x f64 (citl_vd), 8 x f32 (citl_vf)
//   CITL_SIMD_NEON   — AArch64 NEON: 2 x f64, 4 x f32
//   CITL_SIMD_SCALAR — plain C++ fallback: width 1 (any toolchain)
//
// Every operation is bit-exact per lane with the scalar semantics in
// cgra/exec.hpp — that is the whole point, and it dictates some choices:
//   * min/max go through std::fmin/std::fmax lane-by-lane (vminpd/vmaxpd
//     disagree with fmin/fmax on NaN and signed-zero handling),
//   * negation flips the sign bit (0.0 - x would turn -0.0 into +0.0),
//   * select masks use an UNORDERED != 0 compare (NaN selects the "true"
//     arm, exactly like `fa != F(0)` on a scalar NaN),
//   * the CORDIC's quadrant test uses an ORDERED >= compare (NaN takes the
//     "negative" arm, like a scalar `zr >= F(0)`).
//
// The file is self-contained (standard headers only): the build embeds it
// verbatim next to every generated kernel as citl_simd_portability.h, so
// compiled kernels do not include repo headers.
#pragma once

#include <cmath>
#include <cstdint>

#if defined(__AVX2__)
#define CITL_SIMD_AVX2 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define CITL_SIMD_NEON 1
#else
#define CITL_SIMD_SCALAR 1
#endif

#if CITL_SIMD_AVX2
// ===========================================================================
// AVX2: citl_vd = 4 doubles, citl_vf = 8 floats.
// ===========================================================================
#include <immintrin.h>

typedef __m256d citl_vd;
typedef __m256d citl_vdm;  // mask: all-ones / all-zeros lanes
#define CITL_VD_WIDTH 4

static inline citl_vd citl_vd_load(const double* p) {
  return _mm256_loadu_pd(p);
}
static inline void citl_vd_store(double* p, citl_vd v) {
  _mm256_storeu_pd(p, v);
}
static inline citl_vd citl_vd_set1(double x) { return _mm256_set1_pd(x); }
static inline citl_vd citl_vd_add(citl_vd a, citl_vd b) {
  return _mm256_add_pd(a, b);
}
static inline citl_vd citl_vd_sub(citl_vd a, citl_vd b) {
  return _mm256_sub_pd(a, b);
}
static inline citl_vd citl_vd_mul(citl_vd a, citl_vd b) {
  return _mm256_mul_pd(a, b);
}
static inline citl_vd citl_vd_div(citl_vd a, citl_vd b) {
  return _mm256_div_pd(a, b);
}
static inline citl_vd citl_vd_sqrt(citl_vd a) { return _mm256_sqrt_pd(a); }
static inline citl_vd citl_vd_floor(citl_vd a) { return _mm256_floor_pd(a); }
static inline citl_vd citl_vd_neg(citl_vd a) {
  return _mm256_xor_pd(a, _mm256_set1_pd(-0.0));
}
static inline citl_vd citl_vd_abs(citl_vd a) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
}
static inline citl_vd citl_vd_sel(citl_vdm m, citl_vd a, citl_vd b) {
  return _mm256_blendv_pd(b, a, m);  // m ? a : b, per lane
}
static inline citl_vdm citl_vd_ge0(citl_vd a) {
  return _mm256_cmp_pd(a, _mm256_setzero_pd(), _CMP_GE_OQ);
}
static inline citl_vdm citl_vd_neq0(citl_vd a) {
  return _mm256_cmp_pd(a, _mm256_setzero_pd(), _CMP_NEQ_UQ);
}
static inline citl_vd citl_vd_lt(citl_vd a, citl_vd b) {
  return citl_vd_sel(_mm256_cmp_pd(a, b, _CMP_LT_OQ), citl_vd_set1(1.0),
                     citl_vd_set1(0.0));
}
static inline citl_vd citl_vd_le(citl_vd a, citl_vd b) {
  return citl_vd_sel(_mm256_cmp_pd(a, b, _CMP_LE_OQ), citl_vd_set1(1.0),
                     citl_vd_set1(0.0));
}
static inline citl_vd citl_vd_eq(citl_vd a, citl_vd b) {
  return citl_vd_sel(_mm256_cmp_pd(a, b, _CMP_EQ_OQ), citl_vd_set1(1.0),
                     citl_vd_set1(0.0));
}
static inline citl_vd citl_vd_select(citl_vd c, citl_vd a, citl_vd b) {
  return citl_vd_sel(citl_vd_neq0(c), a, b);
}

typedef __m256 citl_vf;
typedef __m256 citl_vfm;
#define CITL_VF_WIDTH 8

/// Generated kernels store every node row as doubles (the machines' SoA
/// layout); the f32 path loads a row of 8 doubles into one float vector and
/// widens back on store. Row values are always binary32-representable
/// (quantised on write), so both conversions are exact.
static inline citl_vf citl_vf_load_d(const double* p) {
  const __m128 lo = _mm256_cvtpd_ps(_mm256_loadu_pd(p));
  const __m128 hi = _mm256_cvtpd_ps(_mm256_loadu_pd(p + 4));
  return _mm256_set_m128(hi, lo);
}
static inline void citl_vf_store_d(double* p, citl_vf v) {
  _mm256_storeu_pd(p, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
  _mm256_storeu_pd(p + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
}
static inline citl_vf citl_vf_set1(float x) { return _mm256_set1_ps(x); }
static inline citl_vf citl_vf_add(citl_vf a, citl_vf b) {
  return _mm256_add_ps(a, b);
}
static inline citl_vf citl_vf_sub(citl_vf a, citl_vf b) {
  return _mm256_sub_ps(a, b);
}
static inline citl_vf citl_vf_mul(citl_vf a, citl_vf b) {
  return _mm256_mul_ps(a, b);
}
static inline citl_vf citl_vf_div(citl_vf a, citl_vf b) {
  return _mm256_div_ps(a, b);
}
static inline citl_vf citl_vf_sqrt(citl_vf a) { return _mm256_sqrt_ps(a); }
static inline citl_vf citl_vf_floor(citl_vf a) { return _mm256_floor_ps(a); }
static inline citl_vf citl_vf_neg(citl_vf a) {
  return _mm256_xor_ps(a, _mm256_set1_ps(-0.0f));
}
static inline citl_vf citl_vf_abs(citl_vf a) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), a);
}
static inline citl_vf citl_vf_sel(citl_vfm m, citl_vf a, citl_vf b) {
  return _mm256_blendv_ps(b, a, m);
}
static inline citl_vfm citl_vf_ge0(citl_vf a) {
  return _mm256_cmp_ps(a, _mm256_setzero_ps(), _CMP_GE_OQ);
}
static inline citl_vfm citl_vf_neq0(citl_vf a) {
  return _mm256_cmp_ps(a, _mm256_setzero_ps(), _CMP_NEQ_UQ);
}
static inline citl_vf citl_vf_lt(citl_vf a, citl_vf b) {
  return citl_vf_sel(_mm256_cmp_ps(a, b, _CMP_LT_OQ), citl_vf_set1(1.0f),
                     citl_vf_set1(0.0f));
}
static inline citl_vf citl_vf_le(citl_vf a, citl_vf b) {
  return citl_vf_sel(_mm256_cmp_ps(a, b, _CMP_LE_OQ), citl_vf_set1(1.0f),
                     citl_vf_set1(0.0f));
}
static inline citl_vf citl_vf_eq(citl_vf a, citl_vf b) {
  return citl_vf_sel(_mm256_cmp_ps(a, b, _CMP_EQ_OQ), citl_vf_set1(1.0f),
                     citl_vf_set1(0.0f));
}
static inline citl_vf citl_vf_select(citl_vf c, citl_vf a, citl_vf b) {
  return citl_vf_sel(citl_vf_neq0(c), a, b);
}

#elif CITL_SIMD_NEON
// ===========================================================================
// AArch64 NEON: citl_vd = 2 doubles, citl_vf = 4 floats.
// ===========================================================================
#include <arm_neon.h>

typedef float64x2_t citl_vd;
typedef uint64x2_t citl_vdm;
#define CITL_VD_WIDTH 2

static inline citl_vd citl_vd_load(const double* p) { return vld1q_f64(p); }
static inline void citl_vd_store(double* p, citl_vd v) { vst1q_f64(p, v); }
static inline citl_vd citl_vd_set1(double x) { return vdupq_n_f64(x); }
static inline citl_vd citl_vd_add(citl_vd a, citl_vd b) {
  return vaddq_f64(a, b);
}
static inline citl_vd citl_vd_sub(citl_vd a, citl_vd b) {
  return vsubq_f64(a, b);
}
static inline citl_vd citl_vd_mul(citl_vd a, citl_vd b) {
  return vmulq_f64(a, b);
}
static inline citl_vd citl_vd_div(citl_vd a, citl_vd b) {
  return vdivq_f64(a, b);
}
static inline citl_vd citl_vd_sqrt(citl_vd a) { return vsqrtq_f64(a); }
static inline citl_vd citl_vd_floor(citl_vd a) { return vrndmq_f64(a); }
static inline citl_vd citl_vd_neg(citl_vd a) { return vnegq_f64(a); }
static inline citl_vd citl_vd_abs(citl_vd a) { return vabsq_f64(a); }
static inline citl_vd citl_vd_sel(citl_vdm m, citl_vd a, citl_vd b) {
  return vbslq_f64(m, a, b);
}
static inline citl_vdm citl_vd_ge0(citl_vd a) {
  return vcgezq_f64(a);  // ordered: NaN -> false
}
static inline citl_vdm citl_vd_neq0(citl_vd a) {
  return veorq_u64(vceqzq_f64(a), vdupq_n_u64(~0ull));  // NaN != 0 -> true
}
static inline citl_vd citl_vd_lt(citl_vd a, citl_vd b) {
  return citl_vd_sel(vcltq_f64(a, b), citl_vd_set1(1.0), citl_vd_set1(0.0));
}
static inline citl_vd citl_vd_le(citl_vd a, citl_vd b) {
  return citl_vd_sel(vcleq_f64(a, b), citl_vd_set1(1.0), citl_vd_set1(0.0));
}
static inline citl_vd citl_vd_eq(citl_vd a, citl_vd b) {
  return citl_vd_sel(vceqq_f64(a, b), citl_vd_set1(1.0), citl_vd_set1(0.0));
}
static inline citl_vd citl_vd_select(citl_vd c, citl_vd a, citl_vd b) {
  return citl_vd_sel(citl_vd_neq0(c), a, b);
}

typedef float32x4_t citl_vf;
typedef uint32x4_t citl_vfm;
#define CITL_VF_WIDTH 4

static inline citl_vf citl_vf_load_d(const double* p) {
  const float32x2_t lo = vcvt_f32_f64(vld1q_f64(p));
  const float32x2_t hi = vcvt_f32_f64(vld1q_f64(p + 2));
  return vcombine_f32(lo, hi);
}
static inline void citl_vf_store_d(double* p, citl_vf v) {
  vst1q_f64(p, vcvt_f64_f32(vget_low_f32(v)));
  vst1q_f64(p + 2, vcvt_f64_f32(vget_high_f32(v)));
}
static inline citl_vf citl_vf_set1(float x) { return vdupq_n_f32(x); }
static inline citl_vf citl_vf_add(citl_vf a, citl_vf b) {
  return vaddq_f32(a, b);
}
static inline citl_vf citl_vf_sub(citl_vf a, citl_vf b) {
  return vsubq_f32(a, b);
}
static inline citl_vf citl_vf_mul(citl_vf a, citl_vf b) {
  return vmulq_f32(a, b);
}
static inline citl_vf citl_vf_div(citl_vf a, citl_vf b) {
  return vdivq_f32(a, b);
}
static inline citl_vf citl_vf_sqrt(citl_vf a) { return vsqrtq_f32(a); }
static inline citl_vf citl_vf_floor(citl_vf a) { return vrndmq_f32(a); }
static inline citl_vf citl_vf_neg(citl_vf a) { return vnegq_f32(a); }
static inline citl_vf citl_vf_abs(citl_vf a) { return vabsq_f32(a); }
static inline citl_vf citl_vf_sel(citl_vfm m, citl_vf a, citl_vf b) {
  return vbslq_f32(m, a, b);
}
static inline citl_vfm citl_vf_ge0(citl_vf a) { return vcgezq_f32(a); }
static inline citl_vfm citl_vf_neq0(citl_vf a) {
  return veorq_u32(vceqzq_f32(a), vdupq_n_u32(~0u));
}
static inline citl_vf citl_vf_lt(citl_vf a, citl_vf b) {
  return citl_vf_sel(vcltq_f32(a, b), citl_vf_set1(1.0f), citl_vf_set1(0.0f));
}
static inline citl_vf citl_vf_le(citl_vf a, citl_vf b) {
  return citl_vf_sel(vcleq_f32(a, b), citl_vf_set1(1.0f), citl_vf_set1(0.0f));
}
static inline citl_vf citl_vf_eq(citl_vf a, citl_vf b) {
  return citl_vf_sel(vceqq_f32(a, b), citl_vf_set1(1.0f), citl_vf_set1(0.0f));
}
static inline citl_vf citl_vf_select(citl_vf c, citl_vf a, citl_vf b) {
  return citl_vf_sel(citl_vf_neq0(c), a, b);
}

#else
// ===========================================================================
// Scalar fallback: width-1 wrappers with identical semantics (the dense
// block loop then simply walks lanes one at a time).
// ===========================================================================

struct citl_vd { double v; };
typedef bool citl_vdm;
#define CITL_VD_WIDTH 1

static inline citl_vd citl_vd_load(const double* p) { return citl_vd{*p}; }
static inline void citl_vd_store(double* p, citl_vd v) { *p = v.v; }
static inline citl_vd citl_vd_set1(double x) { return citl_vd{x}; }
static inline citl_vd citl_vd_add(citl_vd a, citl_vd b) {
  return citl_vd{a.v + b.v};
}
static inline citl_vd citl_vd_sub(citl_vd a, citl_vd b) {
  return citl_vd{a.v - b.v};
}
static inline citl_vd citl_vd_mul(citl_vd a, citl_vd b) {
  return citl_vd{a.v * b.v};
}
static inline citl_vd citl_vd_div(citl_vd a, citl_vd b) {
  return citl_vd{a.v / b.v};
}
static inline citl_vd citl_vd_sqrt(citl_vd a) {
  return citl_vd{std::sqrt(a.v)};
}
static inline citl_vd citl_vd_floor(citl_vd a) {
  return citl_vd{std::floor(a.v)};
}
static inline citl_vd citl_vd_neg(citl_vd a) { return citl_vd{-a.v}; }
static inline citl_vd citl_vd_abs(citl_vd a) {
  return citl_vd{std::fabs(a.v)};
}
static inline citl_vd citl_vd_sel(citl_vdm m, citl_vd a, citl_vd b) {
  return m ? a : b;
}
static inline citl_vdm citl_vd_ge0(citl_vd a) { return a.v >= 0.0; }
static inline citl_vdm citl_vd_neq0(citl_vd a) { return a.v != 0.0; }
static inline citl_vd citl_vd_lt(citl_vd a, citl_vd b) {
  return citl_vd{a.v < b.v ? 1.0 : 0.0};
}
static inline citl_vd citl_vd_le(citl_vd a, citl_vd b) {
  return citl_vd{a.v <= b.v ? 1.0 : 0.0};
}
static inline citl_vd citl_vd_eq(citl_vd a, citl_vd b) {
  return citl_vd{a.v == b.v ? 1.0 : 0.0};
}
static inline citl_vd citl_vd_select(citl_vd c, citl_vd a, citl_vd b) {
  return c.v != 0.0 ? a : b;
}

struct citl_vf { float v; };
typedef bool citl_vfm;
#define CITL_VF_WIDTH 1

static inline citl_vf citl_vf_load_d(const double* p) {
  return citl_vf{static_cast<float>(*p)};
}
static inline void citl_vf_store_d(double* p, citl_vf v) {
  *p = static_cast<double>(v.v);
}
static inline citl_vf citl_vf_set1(float x) { return citl_vf{x}; }
static inline citl_vf citl_vf_add(citl_vf a, citl_vf b) {
  return citl_vf{a.v + b.v};
}
static inline citl_vf citl_vf_sub(citl_vf a, citl_vf b) {
  return citl_vf{a.v - b.v};
}
static inline citl_vf citl_vf_mul(citl_vf a, citl_vf b) {
  return citl_vf{a.v * b.v};
}
static inline citl_vf citl_vf_div(citl_vf a, citl_vf b) {
  return citl_vf{a.v / b.v};
}
static inline citl_vf citl_vf_sqrt(citl_vf a) {
  return citl_vf{std::sqrt(a.v)};
}
static inline citl_vf citl_vf_floor(citl_vf a) {
  return citl_vf{std::floor(a.v)};
}
static inline citl_vf citl_vf_neg(citl_vf a) { return citl_vf{-a.v}; }
static inline citl_vf citl_vf_abs(citl_vf a) {
  return citl_vf{std::fabs(a.v)};
}
static inline citl_vf citl_vf_sel(citl_vfm m, citl_vf a, citl_vf b) {
  return m ? a : b;
}
static inline citl_vfm citl_vf_ge0(citl_vf a) { return a.v >= 0.0f; }
static inline citl_vfm citl_vf_neq0(citl_vf a) { return a.v != 0.0f; }
static inline citl_vf citl_vf_lt(citl_vf a, citl_vf b) {
  return citl_vf{a.v < b.v ? 1.0f : 0.0f};
}
static inline citl_vf citl_vf_le(citl_vf a, citl_vf b) {
  return citl_vf{a.v <= b.v ? 1.0f : 0.0f};
}
static inline citl_vf citl_vf_eq(citl_vf a, citl_vf b) {
  return citl_vf{a.v == b.v ? 1.0f : 0.0f};
}
static inline citl_vf citl_vf_select(citl_vf c, citl_vf a, citl_vf b) {
  return c.v != 0.0f ? a : b;
}

#endif

/// Lane-exact fmin/fmax: the scalar semantics (cgra/exec.hpp) are
/// std::fmin/std::fmax, whose NaN and signed-zero behaviour differs from the
/// hardware min/max instructions — so these go through libm lane by lane.
static inline citl_vd citl_vd_fmin(citl_vd a, citl_vd b) {
  double ta[CITL_VD_WIDTH], tb[CITL_VD_WIDTH];
  citl_vd_store(ta, a);
  citl_vd_store(tb, b);
  for (int i = 0; i < CITL_VD_WIDTH; ++i) ta[i] = std::fmin(ta[i], tb[i]);
  return citl_vd_load(ta);
}
static inline citl_vd citl_vd_fmax(citl_vd a, citl_vd b) {
  double ta[CITL_VD_WIDTH], tb[CITL_VD_WIDTH];
  citl_vd_store(ta, a);
  citl_vd_store(tb, b);
  for (int i = 0; i < CITL_VD_WIDTH; ++i) ta[i] = std::fmax(ta[i], tb[i]);
  return citl_vd_load(ta);
}
static inline citl_vf citl_vf_fmin(citl_vf a, citl_vf b) {
  double ta[CITL_VF_WIDTH], tb[CITL_VF_WIDTH];
  citl_vf_store_d(ta, a);
  citl_vf_store_d(tb, b);
  for (int i = 0; i < CITL_VF_WIDTH; ++i) {
    ta[i] = static_cast<double>(std::fmin(static_cast<float>(ta[i]),
                                          static_cast<float>(tb[i])));
  }
  return citl_vf_load_d(ta);
}
static inline citl_vf citl_vf_fmax(citl_vf a, citl_vf b) {
  double ta[CITL_VF_WIDTH], tb[CITL_VF_WIDTH];
  citl_vf_store_d(ta, a);
  citl_vf_store_d(tb, b);
  for (int i = 0; i < CITL_VF_WIDTH; ++i) {
    ta[i] = static_cast<double>(std::fmax(static_cast<float>(ta[i]),
                                          static_cast<float>(tb[i])));
  }
  return citl_vf_load_d(ta);
}

/// Name of the selected back end (compilation reports, obs labels).
static inline const char* citl_simd_arch() {
#if CITL_SIMD_AVX2
  return "avx2";
#elif CITL_SIMD_NEON
  return "neon";
#else
  return "scalar";
#endif
}
