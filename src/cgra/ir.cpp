#include "cgra/ir.hpp"

#include <algorithm>
#include <sstream>

namespace citl::cgra {

NodeId Dfg::push(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Dfg::add_const(double value) {
  // Dedupe identical literals — the context memories are small.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == OpKind::kConst && nodes_[i].constant == value) {
      return static_cast<NodeId>(i);
    }
  }
  Node n;
  n.kind = OpKind::kConst;
  n.constant = value;
  return push(std::move(n));
}

NodeId Dfg::add_param(const std::string& name, double default_value) {
  for (const auto& p : params_) {
    CITL_CHECK_MSG(p.name != name, "duplicate parameter: " + name);
  }
  Node n;
  n.kind = OpKind::kParam;
  n.name = name;
  n.constant = default_value;
  const NodeId id = push(std::move(n));
  params_.push_back(ParamVar{name, id, default_value});
  return id;
}

NodeId Dfg::add_state(const std::string& name, double initial) {
  for (const auto& s : states_) {
    CITL_CHECK_MSG(s.name != name, "duplicate state: " + name);
  }
  Node n;
  n.kind = OpKind::kState;
  n.name = name;
  n.constant = initial;
  const NodeId id = push(std::move(n));
  states_.push_back(StateVar{name, id, kNoNode, initial});
  return id;
}

NodeId Dfg::add_unary(OpKind k, NodeId a, int stage) {
  CITL_CHECK(op_arity(k) == 1);
  CITL_CHECK(a >= 0 && static_cast<std::size_t>(a) < nodes_.size());
  Node n;
  n.kind = k;
  n.args[0] = a;
  n.stage = stage;
  return push(std::move(n));
}

NodeId Dfg::add_binary(OpKind k, NodeId a, NodeId b, int stage) {
  CITL_CHECK(op_arity(k) == 2);
  CITL_CHECK(a >= 0 && static_cast<std::size_t>(a) < nodes_.size());
  CITL_CHECK(b >= 0 && static_cast<std::size_t>(b) < nodes_.size());
  Node n;
  n.kind = k;
  n.args[0] = a;
  n.args[1] = b;
  n.stage = stage;
  return push(std::move(n));
}

NodeId Dfg::add_select(NodeId cond, NodeId a, NodeId b, int stage) {
  Node n;
  n.kind = OpKind::kSelect;
  n.args[0] = cond;
  n.args[1] = a;
  n.args[2] = b;
  n.stage = stage;
  return push(std::move(n));
}

NodeId Dfg::add_load(NodeId address, int stage) {
  Node n;
  n.kind = OpKind::kLoad;
  n.args[0] = address;
  n.stage = stage;
  return push(std::move(n));
}

NodeId Dfg::add_store(NodeId address, NodeId value, int stage) {
  Node n;
  n.kind = OpKind::kStore;
  n.args[0] = address;
  n.args[1] = value;
  n.stage = stage;
  // Stores execute in program order relative to each other (the sensor bus
  // is a single in-order port).
  if (!stores_.empty()) n.order_deps.push_back(stores_.back());
  const NodeId id = push(std::move(n));
  stores_.push_back(id);
  return id;
}

void Dfg::set_state_update(const std::string& name, NodeId update) {
  for (auto& s : states_) {
    if (s.name == name) {
      s.update = update;
      return;
    }
  }
  CITL_CHECK_MSG(false, "unknown state: " + name);
}

bool Dfg::has_pipeline_stages() const noexcept {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const Node& n) { return n.stage != 0; });
}

std::vector<NodeId> Dfg::intra_preds(NodeId id) const {
  const Node& n = node(id);
  std::vector<NodeId> preds;
  for (unsigned i = 0; i < n.arity(); ++i) {
    const NodeId a = n.args[i];
    if (!is_pipeline_edge(a, id)) preds.push_back(a);
  }
  for (NodeId d : n.order_deps) {
    if (!is_pipeline_edge(d, id)) preds.push_back(d);
  }
  return preds;
}

std::vector<NodeId> Dfg::topo_order() const {
  const std::size_t n = nodes_.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<NodeId>> succs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId p : intra_preds(static_cast<NodeId>(i))) {
      succs[static_cast<std::size_t>(p)].push_back(static_cast<NodeId>(i));
      ++indegree[i];
    }
  }
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  // Process in id order within the ready set for determinism.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId v = ready[head];
    order.push_back(v);
    for (NodeId s : succs[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  CITL_CHECK_MSG(order.size() == n, "dataflow graph has a combinational cycle");
  return order;
}

std::vector<unsigned> Dfg::criticality(const LatencyTable& lat) const {
  const auto order = topo_order();
  std::vector<unsigned> crit(nodes_.size(), 0);
  // Walk in reverse topological order: crit(v) = latency(v) + max crit(succ).
  std::vector<std::vector<NodeId>> succs(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId p : intra_preds(static_cast<NodeId>(i))) {
      succs[static_cast<std::size_t>(p)].push_back(static_cast<NodeId>(i));
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    unsigned best = 0;
    for (NodeId s : succs[static_cast<std::size_t>(v)]) {
      best = std::max(best, crit[static_cast<std::size_t>(s)]);
    }
    crit[static_cast<std::size_t>(v)] = best + lat.of(nodes_[static_cast<std::size_t>(v)].kind);
  }
  return crit;
}

void Dfg::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (unsigned a = 0; a < n.arity(); ++a) {
      CITL_CHECK_MSG(n.args[a] >= 0 &&
                         static_cast<std::size_t>(n.args[a]) < nodes_.size(),
                     "operand out of range");
    }
    CITL_CHECK_MSG(n.stage == 0 || n.stage == 1, "stage must be 0 or 1");
    if (op_is_source(n.kind)) {
      CITL_CHECK_MSG(n.stage == 0, "sources live in stage 0");
    }
    // Stage-1 results feeding stage-0 consumers would need a negative
    // pipeline distance — reject.
    for (unsigned a = 0; a < n.arity(); ++a) {
      const Node& p = nodes_[static_cast<std::size_t>(n.args[a])];
      CITL_CHECK_MSG(!(p.stage == 1 && n.stage == 0),
                     "stage-1 value consumed in stage 0");
    }
  }
  for (const auto& s : states_) {
    CITL_CHECK_MSG(s.update != kNoNode,
                   "state '" + s.name + "' is never updated");
  }
  (void)topo_order();  // throws on cycles
}

std::size_t Dfg::count_class(OpClass c) const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [c](const Node& n) { return op_class(n.kind) == c; }));
}

Dfg Dfg::restore(std::vector<Node> nodes, std::vector<StateVar> states,
                 std::vector<ParamVar> params, std::vector<NodeId> stores) {
  Dfg g;
  g.nodes_ = std::move(nodes);
  g.states_ = std::move(states);
  g.params_ = std::move(params);
  g.stores_ = std::move(stores);
  for (const auto& s : g.states_) {
    CITL_CHECK_MSG(s.node >= 0 &&
                       static_cast<std::size_t>(s.node) < g.nodes_.size(),
                   "restored state node out of range");
  }
  for (const auto& p : g.params_) {
    CITL_CHECK_MSG(p.node >= 0 &&
                       static_cast<std::size_t>(p.node) < g.nodes_.size(),
                   "restored param node out of range");
  }
  g.validate();
  return g;
}

std::string Dfg::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << '%' << i << " = " << op_name(n.kind);
    if (n.kind == OpKind::kConst) os << ' ' << n.constant;
    if (!n.name.empty()) os << " [" << n.name << ']';
    for (unsigned a = 0; a < n.arity(); ++a) os << " %" << n.args[a];
    if (n.stage != 0) os << "  (stage " << n.stage << ')';
    os << '\n';
  }
  for (const auto& s : states_) {
    os << "state " << s.name << ": %" << s.node << " <- %" << s.update
       << " (init " << s.initial << ")\n";
  }
  return os.str();
}

}  // namespace citl::cgra
