#include "cgra/kernels.hpp"

#include <iomanip>
#include <sstream>

#include "cgra/sensor.hpp"
#include "core/error.hpp"
#include "core/units.hpp"

namespace citl::cgra {

namespace {

/// Formats a double as a kernel literal with full round-trip precision.
std::string lit(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  std::string s = os.str();
  // Negative literals must be parenthesised so they can follow operators.
  if (!s.empty() && s[0] == '-') return "(0.0 - " + s.substr(1) + ")";
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string beam_kernel_source(const BeamKernelConfig& cfg) {
  CITL_CHECK_MSG(cfg.n_bunches >= 1 && cfg.n_bunches <= 16,
                 "bunch count out of range");
  CITL_CHECK_MSG(cfg.gamma0 > 1.0, "gamma0 must exceed 1");

  const double qm = cfg.ion.charge_over_mc2();
  const double lr = cfg.ring.circumference_m;
  const double inv_h = 1.0 / static_cast<double>(cfg.ring.harmonic);

  std::ostringstream os;
  os << "// auto-generated beam tracking kernel: " << cfg.ion.name << ", "
     << cfg.n_bunches << " bunch(es), "
     << (cfg.pipelined ? "pipelined" : "plain") << "\n";
  os << "param float v_scale = " << lit(cfg.v_scale) << ";\n";
  os << "state float gamma_r = " << lit(cfg.gamma0) << ";\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "state float dgamma" << j << " = 0.0;\n";
    os << "state float dt" << j << " = 0.0;\n";
  }

  // ---- stage 0: sensing ---------------------------------------------------
  os << "float period = sensor_read(" << lit(region_base(SensorRegion::kPeriod))
     << ");\n";
  os << "float ginv = 1.0 / (gamma_r * gamma_r);\n";
  os << "float beta = sqrtf(1.0 - ginv);\n";
  os << "float t_r = " << lit(lr) << " / (beta * " << lit(kSpeedOfLight)
     << ");\n";
  os << "float dT = t_r - period;\n";
  os << "float fs = " << lit(cfg.sample_rate_hz) << ";\n";
  // Reference voltage V_R from the reference-signal buffer (§IV-B).
  os << "float a_ref = dT * fs;\n";
  os << "float a0 = floorf(a_ref);\n";
  os << "float v0 = sensor_read(" << lit(region_base(SensorRegion::kRefBuf))
     << " + a0);\n";
  if (cfg.interpolate) {
    os << "float v1 = sensor_read("
       << lit(region_base(SensorRegion::kRefBuf) + 1.0) << " + a0);\n";
    os << "float vr = (v0 + (v1 - v0) * (a_ref - a0)) * v_scale;\n";
  } else {
    os << "float vr = v0 * v_scale;\n";
  }
  // Gap voltage V_j for each bunch, bucket-spaced by period/h.
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "float adr" << j << " = (dT + dt" << j << ") * fs";
    if (j != 0) {
      os << " + period * fs * " << lit(static_cast<double>(j) * inv_h);
    }
    os << ";\n";
    os << "float base" << j << " = floorf(adr" << j << ");\n";
    os << "float w0_" << j << " = sensor_read("
       << lit(region_base(SensorRegion::kGapBuf)) << " + base" << j << ");\n";
    if (cfg.interpolate) {
      os << "float w1_" << j << " = sensor_read("
         << lit(region_base(SensorRegion::kGapBuf) + 1.0) << " + base" << j
         << ");\n";
      os << "float va" << j << " = (w0_" << j << " + (w1_" << j << " - w0_"
         << j << ") * (adr" << j << " - base" << j << ")) * v_scale;\n";
    } else {
      os << "float va" << j << " = w0_" << j << " * v_scale;\n";
    }
  }
  // Write-back happens in the first stage — the arrival time for this
  // revolution is already known (§IV-B: "all IO operations are performed in
  // the first loop iteration").
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "sensor_write(" << lit(region_base(SensorRegion::kActuator) +
                                 static_cast<double>(j))
       << ", dT + dt" << j << ");\n";
  }

  if (cfg.pipelined) os << "pipeline_split();\n";

  // ---- stage 1: tracking update (eqs. (2), (3), (5), (6)) -----------------
  os << "gamma_r = gamma_r + " << lit(qm) << " * vr;\n";
  os << "float g2 = 1.0 / (gamma_r * gamma_r);\n";
  os << "float eta = " << lit(cfg.ring.alpha_c) << " - g2;\n";
  os << "float nbeta2 = 1.0 - g2;\n";
  os << "float nbeta = sqrtf(nbeta2);\n";
  os << "float drift = " << lit(lr)
     << " * eta / (nbeta * nbeta2 * gamma_r * " << lit(kSpeedOfLight)
     << ");\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "dgamma" << j << " = dgamma" << j << " + " << lit(qm) << " * (va"
       << j << " - vr);\n";
    os << "dt" << j << " = dt" << j << " + drift * dgamma" << j << ";\n";
  }
  return os.str();
}

std::string analytic_beam_kernel_source(const BeamKernelConfig& cfg) {
  CITL_CHECK_MSG(cfg.n_bunches >= 1 && cfg.n_bunches <= 16,
                 "bunch count out of range");
  CITL_CHECK_MSG(cfg.gamma0 > 1.0, "gamma0 must exceed 1");

  const double qm = cfg.ion.charge_over_mc2();
  const double lr = cfg.ring.circumference_m;

  std::ostringstream os;
  os << "// auto-generated analytic (CORDIC) beam tracking kernel: "
     << cfg.ion.name << ", " << cfg.n_bunches << " bunch(es), "
     << (cfg.pipelined ? "pipelined" : "plain") << "\n";
  os << "param float v_hat = 1000.0;\n";
  os << "param float gap_phase = 0.0;\n";
  os << "state float gamma_r = " << lit(cfg.gamma0) << ";\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "state float dgamma" << j << " = 0.0;\n";
    os << "state float dt" << j << " = 0.0;\n";
  }

  // ---- stage 0: timing + on-chip waveform synthesis -----------------------
  os << "float period = sensor_read(" << lit(region_base(SensorRegion::kPeriod))
     << ");\n";
  os << "float ginv = 1.0 / (gamma_r * gamma_r);\n";
  os << "float beta = sqrtf(1.0 - ginv);\n";
  os << "float t_r = " << lit(lr) << " / (beta * " << lit(kSpeedOfLight)
     << ");\n";
  os << "float dT = t_r - period;\n";
  os << "float omega = " << lit(kTwoPi * cfg.ring.harmonic)
     << " / period;\n";
  // The reference particle rides the undisturbed reference signal's zero
  // crossing: V_R = 0 in the stationary case.
  os << "float vr = 0.0;\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "float va" << j << " = v_hat * sinf(omega * (dT + dt" << j
       << ") + gap_phase);\n";
  }
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "sensor_write(" << lit(region_base(SensorRegion::kActuator) +
                                 static_cast<double>(j))
       << ", dT + dt" << j << ");\n";
  }

  if (cfg.pipelined) os << "pipeline_split();\n";

  // ---- stage 1: tracking update (eqs. (2), (3), (5), (6)) -----------------
  os << "gamma_r = gamma_r + " << lit(qm) << " * vr;\n";
  os << "float g2 = 1.0 / (gamma_r * gamma_r);\n";
  os << "float eta = " << lit(cfg.ring.alpha_c) << " - g2;\n";
  os << "float nbeta2 = 1.0 - g2;\n";
  os << "float nbeta = sqrtf(nbeta2);\n";
  os << "float drift = " << lit(lr)
     << " * eta / (nbeta * nbeta2 * gamma_r * " << lit(kSpeedOfLight)
     << ");\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "dgamma" << j << " = dgamma" << j << " + " << lit(qm) << " * (va"
       << j << " - vr);\n";
    os << "dt" << j << " = dt" << j << " + drift * dgamma" << j << ";\n";
  }
  return os.str();
}

std::string ramp_beam_kernel_source(const BeamKernelConfig& cfg) {
  CITL_CHECK_MSG(cfg.n_bunches >= 1 && cfg.n_bunches <= 16,
                 "bunch count out of range");
  const double qm = cfg.ion.charge_over_mc2();
  const double lr = cfg.ring.circumference_m;
  const double fs = cfg.sample_rate_hz;

  std::ostringstream os;
  os << "// auto-generated ramp-capable beam tracking kernel: "
     << cfg.ion.name << ", " << cfg.n_bunches << " bunch(es), "
     << (cfg.pipelined ? "pipelined" : "plain") << "\n";
  os << "param float v_scale = " << lit(cfg.v_scale) << ";\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "state float dgamma" << j << " = 0.0;\n";
    os << "state float dt" << j << " = 0.0;\n";
  }

  // ---- stage 0: timing + sensing -----------------------------------------
  os << "float period = sensor_read(" << lit(region_base(SensorRegion::kPeriod))
     << ");\n";
  // gamma_R from the measured period — valid at any point of the ramp; the
  // synchronous energy gain never needs to be integrated, because Δγ is
  // defined relative to the (moving) synchronous particle and its kick
  // cancels in ΔV = V(Δt) − V(0).
  os << "float beta = " << lit(lr) << " / (period * " << lit(kSpeedOfLight)
     << ");\n";
  os << "float g2 = 1.0 - beta * beta;\n";
  os << "float gamma_r = 1.0 / sqrtf(g2);\n";
  // Gap-buffer reads are addressed relative to the *synchronous* particle.
  os << "float fs = " << lit(fs) << ";\n";
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "float adr" << j << " = dt" << j << " * fs;\n";
    os << "float base" << j << " = floorf(adr" << j << ");\n";
    os << "float w0_" << j << " = sensor_read("
       << lit(region_base(SensorRegion::kGapBuf)) << " + base" << j << ");\n";
    os << "float w1_" << j << " = sensor_read("
       << lit(region_base(SensorRegion::kGapBuf) + 1.0) << " + base" << j
       << ");\n";
    os << "float va" << j << " = (w0_" << j << " + (w1_" << j << " - w0_" << j
       << ") * (adr" << j << " - base" << j << ")) * v_scale;\n";
  }
  os << "float v0s = sensor_read(" << lit(region_base(SensorRegion::kGapBuf))
     << ") * v_scale;\n";  // gap voltage at the synchronous position
  for (int j = 0; j < cfg.n_bunches; ++j) {
    os << "sensor_write(" << lit(region_base(SensorRegion::kActuator) +
                                 static_cast<double>(j))
       << ", dt" << j << ");\n";
  }
  // The drift coefficient depends only on the measured period, so it belongs
  // to stage 0: stage 1 then consumes it through a pipeline register, whose
  // reset value of 0 makes the warm-up iteration a harmless no-op (dividing
  // by a zero-initialised beta in stage 1 would produce NaN instead).
  os << "float eta = " << lit(cfg.ring.alpha_c) << " - 1.0 / (gamma_r * "
        "gamma_r);\n";
  os << "float drift = " << lit(lr)
     << " * eta / (beta * beta * beta * gamma_r * " << lit(kSpeedOfLight)
     << ");\n";

  if (cfg.pipelined) os << "pipeline_split();\n";

  // ---- stage 1: tracking update at the moving working point ---------------
  for (int j = 0; j < cfg.n_bunches; ++j) {
    // eq. (3) against the synchronous voltage instead of the ref signal.
    os << "dgamma" << j << " = dgamma" << j << " + " << lit(qm) << " * (va"
       << j << " - v0s);\n";
    os << "dt" << j << " = dt" << j << " + drift * dgamma" << j << ";\n";
  }
  return os.str();
}

std::string demo_oscillator_source() {
  // A mass on a spring with drag, integrated symplectically — small, IO-free,
  // and it exercises mul/div/sqrt/compare/select.
  return R"(
param float k = 0.04;      // spring constant
param float drag = 0.002;  // velocity damping
state float x = 1.0;
state float v = 0.0;
float a = 0.0 - k * x - drag * v;
v = v + a;
x = x + v;
float amp = sqrtf(x * x + v * v / k);
float clipped = amp > 10.0 ? 10.0 : amp;
sensor_write(294912.0, clipped);  // MONITOR region (4*65536 + 32768)
)";
}

std::string cavity_iq_servo_source() {
  // RF cavity field controller: demodulate the probe tone into I/Q with an
  // on-chip LO (two CORDIC evaluations), low-pass the baseband pair, and run
  // PI servos on amplitude and phase against a synthetic first-order cavity
  // (a third CORDIC evaluation synthesises the probe). The sensor_read pulls
  // an external disturbance from the PERIOD region (zero on a NullSensorBus),
  // so the kernel is self-exciting yet still exercises the load path.
  return R"(
param float f_lo = 0.0125;       // LO frequency [cycles/iteration]
param float a_ref = 0.75;        // amplitude setpoint
param float k_p = 0.08;          // proportional gain (both loops)
param float k_i = 0.002;         // integral gain (both loops)
param float detune = 0.002;      // cavity detuning drift [rad/iteration]
param float drive_limit = 1.5;   // actuator saturation
state float ph = 0.0;            // LO phase accumulator
state float amp = 0.2;           // cavity field amplitude (plant state)
state float phase = 0.3;         // cavity phase error (plant state)
state float i_f = 0.0;           // filtered in-phase baseband
state float q_f = 0.0;           // filtered quadrature baseband
state float integ_a = 0.0;       // amplitude-loop integrator
state float integ_p = 0.0;       // phase-loop integrator
ph = ph + 6.2831853 * f_lo;
float lo_i = cosf(ph);
float lo_q = sinf(ph);
float probe = amp * sinf(ph + phase) + sensor_read(32768.0);
float i_raw = probe * lo_i;
float q_raw = probe * lo_q;
i_f = i_f + 0.05 * (i_raw - i_f);
q_f = q_f + 0.05 * (q_raw - q_f);
float a_meas = sqrtf(i_f * i_f + q_f * q_f);
float err_a = a_ref - 2.0 * a_meas;
integ_a = integ_a + k_i * err_a;
float drv_raw = k_p * err_a + integ_a;
float drv = drv_raw > drive_limit ? drive_limit : (drv_raw < 0.0 ? 0.0 : drv_raw);
float err_p = fminf(fmaxf(q_f / (a_meas + 0.001), -1.0), 1.0);
integ_p = integ_p + k_i * err_p;
float dphi_raw = k_p * err_p + integ_p;
float dphi = dphi_raw > 0.5 ? 0.5 : (dphi_raw < -0.5 ? -0.5 : dphi_raw);
amp = amp + 0.05 * (drv - amp);
phase = phase + detune - 0.08 * dphi;
sensor_write(229376.0, drv);     // ACTUATOR region (3*65536 + 32768)
sensor_write(294912.0, err_a);   // MONITOR region (4*65536 + 32768)
)";
}

}  // namespace citl::cgra
