// SensorAccess (§III-C): the memory-mapped bus between the CGRA and the
// surrounding framework. Kernels compute a single float address; the bus
// splits it into a region (ring buffers, detectors, actuators, ...) and a
// signed offset within the region.
//
// Encoding: address = region * 65536 + 32768 + offset, offset in
// [-32768, 32768). The bias makes negative offsets (samples *before* the
// zero crossing — early particles) valid, which the paper's double-period
// ring buffers exist to support. All values stay integer-exact in binary32.
//
// Region map:
//   0 PERIOD    read : offset 0 = averaged reference period [s]
//                      offset 1 = reference frequency [Hz]
//   1 REF_BUF   read : offset   = capture-clock ticks relative to the last
//                                 positive zero crossing; returns the raw
//                                 reference-channel ADC sample [V]
//   2 GAP_BUF   read : same, gap channel
//   3 ACTUATOR  write: offset j = arrival time of bunch j relative to the
//                                 zero crossing [s]; arms the Gauss pulse
//                                 timer for that bunch
//   4 MONITOR   write: offset 0 = value mirrored on the monitoring DAC
#pragma once

#include <cmath>
#include <cstdint>

namespace citl::cgra {

inline constexpr double kRegionSize = 65536.0;
inline constexpr double kRegionBias = 32768.0;

enum class SensorRegion : std::uint32_t {
  kPeriod = 0,
  kRefBuf = 1,
  kGapBuf = 2,
  kActuator = 3,
  kMonitor = 4,
};

/// Base address (as a kernel-language literal) of a region: add the signed
/// offset to this.
[[nodiscard]] constexpr double region_base(SensorRegion r) noexcept {
  return static_cast<double>(static_cast<std::uint32_t>(r)) * kRegionSize +
         kRegionBias;
}

/// Splits a raw kernel address into (region, signed offset).
struct DecodedAddress {
  SensorRegion region;
  double offset;
};

[[nodiscard]] inline DecodedAddress decode_address(double addr) noexcept {
  double r = std::floor(addr / kRegionSize);
  if (r < 0.0) r = 0.0;
  return DecodedAddress{
      static_cast<SensorRegion>(static_cast<std::uint32_t>(r)),
      addr - r * kRegionSize - kRegionBias};
}

/// The bus the CGRA machine drives. The HIL framework implements it backed
/// by the capture buffers, detectors and pulse generators; tests implement
/// scripted versions.
class SensorBus {
 public:
  virtual ~SensorBus() = default;
  [[nodiscard]] virtual double read(SensorRegion region, double offset) = 0;
  virtual void write(SensorRegion region, double offset, double value) = 0;
};

/// A bus that reads zeros and ignores writes — for pure-dataflow kernels.
class NullSensorBus final : public SensorBus {
 public:
  [[nodiscard]] double read(SensorRegion, double) override { return 0.0; }
  void write(SensorRegion, double, double) override {}
};

}  // namespace citl::cgra
