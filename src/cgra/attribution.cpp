#include "cgra/attribution.hpp"

#include <algorithm>
#include <array>

#include "io/json.hpp"
#include "io/table.hpp"

namespace citl::cgra {

KernelCycleProfile kernel_cycle_profile(const CompiledKernel& kernel) {
  KernelCycleProfile profile;
  profile.kernel_name = kernel.name;
  profile.schedule_length = kernel.schedule.length;
  profile.pe_count = kernel.arch.pe_count();

  // Accumulate per-kind ops and busy cycles. OpKind is a dense uint8 enum;
  // kMove is last.
  constexpr std::size_t kKinds = static_cast<std::size_t>(OpKind::kMove) + 1;
  std::array<std::uint64_t, kKinds> ops{};
  std::array<std::uint64_t, kKinds> cycles{};
  const Dfg& g = kernel.dfg;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto k = static_cast<std::size_t>(g.node(id).kind);
    const Placement& p = kernel.schedule.placement[i];
    ops[k] += 1;
    cycles[k] += p.finish - p.start;
  }
  // Scheduler-inserted route hops: one route-port cycle each.
  const auto move = static_cast<std::size_t>(OpKind::kMove);
  ops[move] += kernel.schedule.hops.size();
  cycles[move] += kernel.schedule.hops.size();

  for (std::size_t k = 0; k < kKinds; ++k) {
    if (ops[k] == 0) continue;
    AttributionRow row;
    row.kind = static_cast<OpKind>(k);
    row.unit = op_class(row.kind);
    row.ops = ops[k];
    row.cycles_per_iteration = cycles[k];
    profile.busy_cycles += cycles[k];
    profile.rows.push_back(row);
  }
  std::sort(profile.rows.begin(), profile.rows.end(),
            [](const AttributionRow& x, const AttributionRow& y) {
              if (x.cycles_per_iteration != y.cycles_per_iteration) {
                return x.cycles_per_iteration > y.cycles_per_iteration;
              }
              return op_name(x.kind) < op_name(y.kind);
            });
  const double slots = static_cast<double>(profile.pe_count) *
                       static_cast<double>(profile.schedule_length);
  profile.pe_utilisation =
      slots > 0.0 ? static_cast<double>(profile.busy_cycles) / slots : 0.0;
  return profile;
}

std::string attribution_metric_name(const AttributionRow& row) {
  std::string name = "cgra.op_cycles[op=";
  name += op_name(row.kind);
  name += ",fu=";
  name += op_class_name(row.unit);
  name += ']';
  return name;
}

AttributionCounters::AttributionCounters(const CompiledKernel& kernel) {
  const KernelCycleProfile profile = kernel_cycle_profile(kernel);
  entries_.reserve(profile.rows.size());
  for (const AttributionRow& row : profile.rows) {
    if (row.cycles_per_iteration == 0) continue;
    entries_.push_back(
        {&obs::Registry::global().counter(attribution_metric_name(row)),
         row.cycles_per_iteration});
  }
}

void AttributionCounters::add_iterations(std::uint64_t n) noexcept {
  for (const Entry& e : entries_) {
    e.cycles->add(e.cycles_per_iteration * n);
  }
}

std::string hotspot_table(const KernelCycleProfile& profile,
                          std::uint64_t iterations) {
  io::Table table({"op", "unit", "ops", "cyc/iter", "share", "total_cycles"});
  const double busy = profile.busy_cycles > 0
                          ? static_cast<double>(profile.busy_cycles)
                          : 1.0;
  for (const AttributionRow& row : profile.rows) {
    table.add_row(
        {std::string(op_name(row.kind)), std::string(op_class_name(row.unit)),
         std::to_string(row.ops), std::to_string(row.cycles_per_iteration),
         io::Table::num(100.0 * static_cast<double>(row.cycles_per_iteration) /
                            busy,
                        3) +
             "%",
         std::to_string(row.cycles_per_iteration * iterations)});
  }
  std::string out = "kernel '" + profile.kernel_name +
                    "': schedule length " +
                    std::to_string(profile.schedule_length) + " cycles, " +
                    std::to_string(profile.busy_cycles) +
                    " busy PE-cycles/iter (utilisation " +
                    io::Table::num(100.0 * profile.pe_utilisation, 3) +
                    "%), " + std::to_string(iterations) + " iterations\n";
  out += table.render();
  return out;
}

void append_attribution_json(io::JsonWriter& w,
                             const KernelCycleProfile& profile,
                             std::uint64_t iterations) {
  w.begin_object();
  w.key("kernel").value(std::string_view(profile.kernel_name));
  w.key("schedule_length").value(
      static_cast<std::uint64_t>(profile.schedule_length));
  w.key("pe_count").value(static_cast<std::int64_t>(profile.pe_count));
  w.key("busy_cycles_per_iteration").value(profile.busy_cycles);
  w.key("pe_utilisation").value(profile.pe_utilisation);
  w.key("iterations").value(iterations);
  w.key("ops").begin_array();
  for (const AttributionRow& row : profile.rows) {
    w.begin_object();
    w.key("op").value(op_name(row.kind));
    w.key("unit").value(op_class_name(row.unit));
    w.key("count").value(row.ops);
    w.key("cycles_per_iteration").value(row.cycles_per_iteration);
    w.key("total_cycles").value(row.cycles_per_iteration * iterations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace citl::cgra
