// Recursive-descent parser for the kernel language (grammar in lexer.hpp).
#pragma once

#include <string_view>

#include "cgra/ast.hpp"

namespace citl::cgra {

/// Parses kernel source into an AST. Throws CompileError with location info.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace citl::cgra
