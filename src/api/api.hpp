// citl::api — the stable public facade over the HIL stack.
//
// Before this layer existed, every entry point rolled its own setup: the
// examples copied the operating-point plumbing (ring, gamma, gap voltage),
// the console spoke the deprecated string-keyed machine wrappers, and the
// sweep builder took raw engine configs. The facade promotes that ad-hoc
// surface into one coherent API that the session server (src/serve/), the
// operator console, the examples and the sweep all consume:
//
//   * SessionConfig  — a flat, plain-data description of one virtual
//                      synchrotron (operating point + engine knobs). Flat on
//                      purpose: the citl-wire-v1 protocol serialises exactly
//                      these fields, so what a remote client can request is
//                      what a library caller can construct — nothing more.
//   * to_turnloop_config / to_framework_config — deterministic expansion
//                      into the engine configs (host-side initialisation:
//                      ring from the harmonic, gamma from f_ref, gap voltage
//                      from the target synchrotron frequency).
//   * by-name kernel access — the sanctioned interactive path to kernel
//                      parameters/states, replacing the deprecated
//                      string-keyed CgraMachine wrappers. It resolves a
//                      handle per call (fine for consoles and RPC, wrong for
//                      per-revolution hot paths) and reports the same typed
//                      ConfigError a direct handle lookup would.
//   * ErrorCode      — re-exported from core/error.hpp: the one error
//                      taxonomy shared by library exceptions and the wire
//                      protocol's response status (docs/SERVING.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/error.hpp"
#include "hil/framework.hpp"
#include "hil/turnloop.hpp"

namespace citl::api {

using citl::Error;
using citl::ErrorCode;
using citl::error_code_name;

/// One virtual synchrotron, as the public API describes it. Field semantics
/// follow the paper's operating point; defaults() IS the paper's §V point.
/// Plain data, no invariants enforced at construction — validate() (called
/// by the converters and the session runtime) reports violations as
/// ConfigError naming the offending field.
struct SessionConfig {
  // --- operating point ----------------------------------------------------
  double f_ref_hz = 800.0e3;     ///< revolution (reference) frequency
  int harmonic = 4;              ///< RF harmonic number (ring = sis18(h))
  /// Target synchrotron frequency; the gap voltage is derived from it unless
  /// gap_voltage_v overrides it explicitly.
  double f_sync_hz = 1280.0;
  /// Explicit gap amplitude [V]; <= 0 means "derive from f_sync_hz".
  double gap_voltage_v = 0.0;
  // --- stimulus -----------------------------------------------------------
  double jump_amplitude_deg = 0.0;  ///< 0 = no phase-jump programme
  double jump_start_s = 1.0e-3;
  double jump_interval_s = 1.0;
  // --- control loop -------------------------------------------------------
  double gain = -5.0;            ///< beam-phase controller gain
  bool control_enabled = true;
  // --- engine knobs -------------------------------------------------------
  bool pipelined = true;         ///< 2-stage kernel pipelining (the paper's)
  bool cycle_accurate = false;   ///< walk the CGRA schedule cycle by cycle
  bool synthesize_waveform = false;  ///< CORDIC on-chip waveform synthesis
  bool quantise_period = false;  ///< hardware-style period quantisation
  /// Kernel execution back end (cgra/exec_tier.hpp): interpreter, bytecode,
  /// native codegen, or auto. All tiers are bit-identical, so this knob
  /// changes throughput only — but it is still part of the config digest
  /// (the journal records exactly what ran).
  cgra::ExecTier exec_tier = cgra::ExecTier::kInterpreter;
  double phase_noise_rad = 0.0;  ///< detector noise injection
  std::uint64_t noise_seed = 7;  ///< deterministic per-session noise stream
  /// Supervised recovery layer with default thresholds (SupervisorConfig);
  /// sessions with a supervisor cannot be snapshot/restored (its internal
  /// state is not part of the checkpoint image).
  bool supervised = false;
};

/// The paper's §V operating point: 14N7+, 800 kHz, h = 4, f_sync ≈ 1.28 kHz,
/// 8 deg jumps at gain -5 (the defaults above, with the jump programme on).
[[nodiscard]] SessionConfig paper_operating_point();

/// Throws ConfigError (naming the offending field) when the configuration
/// is not realisable: non-positive frequencies, harmonic < 1, |gain| = 0
/// combined with control enabled is permitted (it just does nothing).
void validate(const SessionConfig& config);

/// Gap amplitude [V] realising config.f_sync_hz at the configured ring and
/// energy (or config.gap_voltage_v verbatim when that override is set).
[[nodiscard]] double effective_gap_voltage_v(const SessionConfig& config);

/// FNV-1a digest over the canonical field encoding (the citl-wire-v1 create
/// payload order, raw binary64 bit patterns for doubles). Equal configs —
/// and only equal configs, up to hash collision — share a digest; the
/// session journal stores it in the file header so recovery refuses to
/// replay a step log against a different operating point.
[[nodiscard]] std::uint64_t session_config_digest(const SessionConfig& config);

/// Expands a SessionConfig into the turn-level engine configuration. The
/// expansion is deterministic: equal SessionConfigs produce byte-identical
/// TurnLoopConfigs, which is what makes a session stepped over the wire
/// bit-identical to the in-process library path (pinned by ServeServer
/// tests).
[[nodiscard]] hil::TurnLoopConfig to_turnloop_config(
    const SessionConfig& config);

/// Expands a SessionConfig into the sample-accurate engine configuration
/// (examples and sweeps; the session server serves the turn-level engine).
[[nodiscard]] hil::FrameworkConfig to_framework_config(
    const SessionConfig& config);

// --- by-name kernel access (interactive path) -----------------------------
// Resolves a handle per call and delegates — the replacement for the
// deprecated string-keyed CgraMachine wrappers. Unknown names throw
// ConfigError{kUnknownKey} naming the kernel and the offending key, exactly
// like param_handle()/state_handle().

void set_kernel_param(cgra::BeamModel& model, std::string_view name,
                      double value, std::size_t lane = 0);
[[nodiscard]] double kernel_param(const cgra::BeamModel& model,
                                  std::string_view name, std::size_t lane = 0);
void set_kernel_state(cgra::BeamModel& model, std::string_view name,
                      double value, std::size_t lane = 0);
[[nodiscard]] double kernel_state(const cgra::BeamModel& model,
                                  std::string_view name, std::size_t lane = 0);

}  // namespace citl::api
