#include "api/api.hpp"

#include <cstring>
#include <sstream>

#include "core/units.hpp"
#include "phys/ion.hpp"
#include "phys/machine.hpp"
#include "phys/relativity.hpp"
#include "phys/synchrotron.hpp"

namespace citl::api {

namespace {

[[noreturn]] void throw_field(const char* field, const std::string& detail) {
  std::ostringstream os;
  os << "SessionConfig." << field << ": " << detail;
  throw ConfigError(os.str(), ErrorCode::kInvalidConfig);
}

}  // namespace

SessionConfig paper_operating_point() {
  SessionConfig config;       // the defaults are the paper's operating point
  config.jump_amplitude_deg = 8.0;
  return config;
}

void validate(const SessionConfig& config) {
  if (!(config.f_ref_hz > 0.0)) {
    throw_field("f_ref_hz", "revolution frequency must be > 0 (got " +
                                std::to_string(config.f_ref_hz) + ")");
  }
  if (config.harmonic < 1) {
    throw_field("harmonic", "RF harmonic must be >= 1 (got " +
                                std::to_string(config.harmonic) + ")");
  }
  if (config.gap_voltage_v <= 0.0 && !(config.f_sync_hz > 0.0)) {
    throw_field("f_sync_hz",
                "synchrotron frequency must be > 0 when no explicit "
                "gap_voltage_v is given (got " +
                    std::to_string(config.f_sync_hz) + ")");
  }
  if (config.jump_amplitude_deg < 0.0) {
    throw_field("jump_amplitude_deg",
                "jump amplitude must be >= 0 (got " +
                    std::to_string(config.jump_amplitude_deg) + ")");
  }
  if (config.jump_amplitude_deg > 0.0 && !(config.jump_interval_s > 0.0)) {
    throw_field("jump_interval_s",
                "jump interval must be > 0 (got " +
                    std::to_string(config.jump_interval_s) + ")");
  }
  if (config.phase_noise_rad < 0.0) {
    throw_field("phase_noise_rad",
                "noise amplitude must be >= 0 (got " +
                    std::to_string(config.phase_noise_rad) + ")");
  }
  switch (config.exec_tier) {
    case cgra::ExecTier::kInterpreter:
    case cgra::ExecTier::kBytecode:
    case cgra::ExecTier::kNative:
    case cgra::ExecTier::kAuto:
      break;
    default:
      throw_field("exec_tier",
                  "unknown execution tier " +
                      std::to_string(static_cast<int>(config.exec_tier)));
  }
  // The relativistic energy implied by the revolution frequency must be
  // physical (beta < 1): f_ref · C < c.
  const phys::Ring ring = phys::sis18(config.harmonic);
  const double beta =
      config.f_ref_hz * ring.circumference_m / kSpeedOfLight;
  if (beta >= 1.0) {
    throw_field("f_ref_hz",
                "implies superluminal beam (beta = " + std::to_string(beta) +
                    " at the SIS18 circumference)");
  }
}

namespace {

/// FNV-1a 64-bit, fed field by field in the citl-wire-v1 create-payload
/// order. Doubles hash their raw binary64 bit pattern so the digest is as
/// bit-exact as the wire encoding itself.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    bytes(b, sizeof(b));
  }
  void u32(std::uint32_t v) { u64(v); }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::uint64_t session_config_digest(const SessionConfig& config) {
  Fnv1a h;
  h.f64(config.f_ref_hz);
  h.u32(static_cast<std::uint32_t>(config.harmonic));
  h.f64(config.f_sync_hz);
  h.f64(config.gap_voltage_v);
  h.f64(config.jump_amplitude_deg);
  h.f64(config.jump_start_s);
  h.f64(config.jump_interval_s);
  h.f64(config.gain);
  h.u8(config.control_enabled ? 1 : 0);
  h.u8(config.pipelined ? 1 : 0);
  h.u8(config.cycle_accurate ? 1 : 0);
  h.u8(config.synthesize_waveform ? 1 : 0);
  h.u8(config.quantise_period ? 1 : 0);
  h.f64(config.phase_noise_rad);
  h.u64(config.noise_seed);
  h.u8(config.supervised ? 1 : 0);
  h.u8(static_cast<std::uint8_t>(config.exec_tier));
  return h.value();
}

double effective_gap_voltage_v(const SessionConfig& config) {
  if (config.gap_voltage_v > 0.0) return config.gap_voltage_v;
  const phys::Ring ring = phys::sis18(config.harmonic);
  const double gamma = phys::gamma_from_revolution_frequency(
      config.f_ref_hz, ring.circumference_m);
  return phys::amplitude_for_synchrotron_frequency(
      phys::ion_n14_7plus(), ring, gamma, config.f_sync_hz);
}

namespace {

/// The shared part of both expansions: operating point, stimulus, control.
/// Everything here is a deterministic function of the SessionConfig, so two
/// equal configs expand to byte-identical engine configs (the byte-identity
/// tests in test_serve.cpp rest on this).
template <class EngineConfig>
void expand_common(const SessionConfig& config, EngineConfig& out) {
  out.kernel.ring = phys::sis18(config.harmonic);
  out.kernel.pipelined = config.pipelined;
  out.f_ref_hz = config.f_ref_hz;
  out.gap_voltage_v = effective_gap_voltage_v(config);
  out.control_enabled = config.control_enabled;
  out.controller.gain = config.gain;
  if (config.jump_amplitude_deg > 0.0) {
    out.jumps = ctrl::PhaseJumpProgramme(
        deg_to_rad(config.jump_amplitude_deg), config.jump_interval_s,
        config.jump_start_s);
  }
}

}  // namespace

hil::TurnLoopConfig to_turnloop_config(const SessionConfig& config) {
  validate(config);
  hil::TurnLoopConfig out;
  expand_common(config, out);
  out.cycle_accurate = config.cycle_accurate;
  out.exec_tier = config.exec_tier;
  out.synthesize_waveform = config.synthesize_waveform;
  out.quantise_period = config.quantise_period;
  out.phase_noise_rad = config.phase_noise_rad;
  out.noise_seed = config.noise_seed;
  out.supervisor.enabled = config.supervised;
  return out;
}

hil::FrameworkConfig to_framework_config(const SessionConfig& config) {
  validate(config);
  hil::FrameworkConfig out;
  expand_common(config, out);
  out.cycle_accurate_cgra = config.cycle_accurate;
  out.exec_tier = config.exec_tier;
  out.noise_seed = config.noise_seed;
  out.supervisor.enabled = config.supervised;
  // The sample-accurate engine has no analytic noise injection or waveform
  // synthesis toggle — those are turn-level knobs; requesting them here is a
  // config error rather than a silent drop.
  if (config.synthesize_waveform) {
    throw ConfigError(
        "SessionConfig.synthesize_waveform: on-chip waveform synthesis is a "
        "turn-level engine feature (use to_turnloop_config)",
        ErrorCode::kUnsupported);
  }
  if (config.phase_noise_rad != 0.0) {
    throw ConfigError(
        "SessionConfig.phase_noise_rad: analytic detector-noise injection is "
        "a turn-level engine feature (the sample-accurate engine models noise "
        "at the ADCs; use adc_noise_rms_v on FrameworkConfig directly)",
        ErrorCode::kUnsupported);
  }
  if (config.quantise_period) {
    throw ConfigError(
        "SessionConfig.quantise_period: the sample-accurate engine always "
        "quantises to the capture clock; the toggle is a turn-level knob",
        ErrorCode::kUnsupported);
  }
  return out;
}

void set_kernel_param(cgra::BeamModel& model, std::string_view name,
                      double value, std::size_t lane) {
  model.set_param(model.param_handle(name), value, lane);
}

double kernel_param(const cgra::BeamModel& model, std::string_view name,
                    std::size_t lane) {
  return model.param(model.param_handle(name), lane);
}

void set_kernel_state(cgra::BeamModel& model, std::string_view name,
                      double value, std::size_t lane) {
  model.set_state(model.state_handle(name), value, lane);
}

double kernel_state(const cgra::BeamModel& model, std::string_view name,
                    std::size_t lane) {
  return model.state(model.state_handle(name), lane);
}

}  // namespace citl::api
