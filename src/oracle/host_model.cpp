#include "oracle/host_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "cgra/exec.hpp"
#include "core/error.hpp"
#include "core/units.hpp"

namespace citl::oracle {

namespace {

using cgra::SensorRegion;

/// sinf as the overlay computes it, in binary64: the CORDIC rotation is the
/// PE's defining algorithm, so the reference evaluates the same rotation —
/// in double throughout — rather than libm sin.
double cordic_sin(double angle) {
  double c, s;
  cgra::detail::cordic_rotate<double>(angle, &c, &s);
  return s;
}

}  // namespace

HostReferenceModel::HostReferenceModel(
    std::shared_ptr<const cgra::CompiledKernel> kernel,
    const cgra::BeamKernelConfig& cfg, bool analytic, cgra::SensorBus& bus)
    : kernel_(std::move(kernel)), cfg_(cfg), analytic_(analytic), bus_(&bus) {
  CITL_CHECK_MSG(kernel_ != nullptr, "host model needs a kernel");
  const auto& dfg = kernel_->dfg;
  s_dgamma_.assign(static_cast<std::size_t>(cfg_.n_bunches), -1);
  s_dt_.assign(static_cast<std::size_t>(cfg_.n_bunches), -1);
  for (std::size_t s = 0; s < dfg.states().size(); ++s) {
    const std::string& name = dfg.states()[s].name;
    if (name == "gamma_r") {
      s_gamma_ = static_cast<int>(s);
    } else if (name.rfind("dgamma", 0) == 0) {
      const int j = std::stoi(name.substr(6));
      CITL_CHECK(j >= 0 && j < cfg_.n_bunches);
      s_dgamma_[static_cast<std::size_t>(j)] = static_cast<int>(s);
    } else if (name.rfind("dt", 0) == 0) {
      const int j = std::stoi(name.substr(2));
      CITL_CHECK(j >= 0 && j < cfg_.n_bunches);
      s_dt_[static_cast<std::size_t>(j)] = static_cast<int>(s);
    }
  }
  for (std::size_t p = 0; p < dfg.params().size(); ++p) {
    const std::string& name = dfg.params()[p].name;
    if (name == "v_scale") p_v_scale_ = static_cast<int>(p);
    if (name == "v_hat") p_v_hat_ = static_cast<int>(p);
    if (name == "gap_phase") p_gap_phase_ = static_cast<int>(p);
  }
  CITL_CHECK_MSG(s_gamma_ >= 0, "host model mirrors only the turn-loop "
                                "kernels (no gamma_r state found)");
  for (int j = 0; j < cfg_.n_bunches; ++j) {
    CITL_CHECK(s_dgamma_[static_cast<std::size_t>(j)] >= 0 &&
               s_dt_[static_cast<std::size_t>(j)] >= 0);
  }
  if (analytic_) {
    CITL_CHECK_MSG(p_v_hat_ >= 0 && p_gap_phase_ >= 0,
                   "analytic host model needs v_hat/gap_phase params");
  } else {
    CITL_CHECK_MSG(p_v_scale_ >= 0, "sampled host model needs v_scale param");
  }
  pipe_.assign(1 + static_cast<std::size_t>(cfg_.n_bunches), 0.0);
  reset();
}

void HostReferenceModel::reset() {
  const auto& dfg = kernel_->dfg;
  states_.resize(dfg.states().size());
  for (std::size_t s = 0; s < states_.size(); ++s) {
    states_[s] = dfg.states()[s].initial;
  }
  params_.resize(dfg.params().size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    params_[p] = dfg.params()[p].default_value;
  }
  std::fill(pipe_.begin(), pipe_.end(), 0.0);
}

void HostReferenceModel::check_lane(std::size_t lane) const {
  if (lane != 0) cgra::detail::throw_lane_out_of_range(*kernel_, lane, 1);
}

void HostReferenceModel::set_param(cgra::ParamHandle h, double value,
                                   std::size_t lane) {
  check_lane(lane);
  if (!h.valid() || static_cast<std::size_t>(h.index) >= params_.size()) {
    cgra::detail::throw_invalid_handle(*kernel_, "parameter");
  }
  params_[static_cast<std::size_t>(h.index)] = value;
}

double HostReferenceModel::param(cgra::ParamHandle h, std::size_t lane) const {
  check_lane(lane);
  if (!h.valid() || static_cast<std::size_t>(h.index) >= params_.size()) {
    cgra::detail::throw_invalid_handle(*kernel_, "parameter");
  }
  return params_[static_cast<std::size_t>(h.index)];
}

void HostReferenceModel::set_state(cgra::StateHandle h, double value,
                                   std::size_t lane) {
  check_lane(lane);
  if (!h.valid() || static_cast<std::size_t>(h.index) >= states_.size()) {
    cgra::detail::throw_invalid_handle(*kernel_, "state");
  }
  states_[static_cast<std::size_t>(h.index)] = value;
}

double HostReferenceModel::state(cgra::StateHandle h, std::size_t lane) const {
  check_lane(lane);
  if (!h.valid() || static_cast<std::size_t>(h.index) >= states_.size()) {
    cgra::detail::throw_invalid_handle(*kernel_, "state");
  }
  return states_[static_cast<std::size_t>(h.index)];
}

void HostReferenceModel::snapshot_states(std::size_t lane, double* out) const {
  check_lane(lane);
  for (std::size_t s = 0; s < states_.size(); ++s) out[s] = states_[s];
}

void HostReferenceModel::restore_states(std::size_t lane,
                                        const double* values) {
  check_lane(lane);
  for (std::size_t s = 0; s < states_.size(); ++s) states_[s] = values[s];
}

void HostReferenceModel::snapshot_pipe_regs(std::size_t lane,
                                            double* out) const {
  check_lane(lane);
  for (std::size_t i = 0; i < pipe_.size(); ++i) out[i] = pipe_[i];
}

void HostReferenceModel::restore_pipe_regs(std::size_t lane,
                                           const double* values) {
  check_lane(lane);
  for (std::size_t i = 0; i < pipe_.size(); ++i) pipe_[i] = values[i];
}

unsigned HostReferenceModel::run_iteration_all_lanes() {
  if (analytic_) {
    run_analytic();
  } else {
    run_sampled();
  }
  return kernel_->schedule.length;
}

void HostReferenceModel::run_sampled() {
  const double qm = cfg_.ion.charge_over_mc2();
  const double lr = cfg_.ring.circumference_m;
  const double inv_h = 1.0 / static_cast<double>(cfg_.ring.harmonic);
  const int nb = cfg_.n_bunches;
  const double v_scale = params_[static_cast<std::size_t>(p_v_scale_)];
  const double gamma_r = states_[static_cast<std::size_t>(s_gamma_)];

  // ---- stage 0: sensing (kernels.cpp beam_kernel_source, same order) -----
  const double period = bus_->read(SensorRegion::kPeriod, 0.0);
  const double ginv = 1.0 / (gamma_r * gamma_r);
  const double beta = std::sqrt(1.0 - ginv);
  const double t_r = lr / (beta * kSpeedOfLight);
  const double dT = t_r - period;
  const double fs = cfg_.sample_rate_hz;
  const double a_ref = dT * fs;
  const double a0 = std::floor(a_ref);
  const double v0 = bus_->read(SensorRegion::kRefBuf, a0);
  double vr;
  if (cfg_.interpolate) {
    // Kernel address literal is region_base + 1.0, so the neighbour read
    // decodes to offset 1.0 + a0.
    const double v1 = bus_->read(SensorRegion::kRefBuf, 1.0 + a0);
    vr = (v0 + (v1 - v0) * (a_ref - a0)) * v_scale;
  } else {
    vr = v0 * v_scale;
  }
  std::vector<double> va(static_cast<std::size_t>(nb));
  for (int j = 0; j < nb; ++j) {
    const double dt_j = states_[static_cast<std::size_t>(
        s_dt_[static_cast<std::size_t>(j)])];
    double adr = (dT + dt_j) * fs;
    if (j != 0) adr += period * fs * (static_cast<double>(j) * inv_h);
    const double base = std::floor(adr);
    const double w0 = bus_->read(SensorRegion::kGapBuf, base);
    if (cfg_.interpolate) {
      const double w1 = bus_->read(SensorRegion::kGapBuf, 1.0 + base);
      va[static_cast<std::size_t>(j)] =
          (w0 + (w1 - w0) * (adr - base)) * v_scale;
    } else {
      va[static_cast<std::size_t>(j)] = w0 * v_scale;
    }
  }
  for (int j = 0; j < nb; ++j) {
    const double dt_j = states_[static_cast<std::size_t>(
        s_dt_[static_cast<std::size_t>(j)])];
    bus_->write(SensorRegion::kActuator, static_cast<double>(j), dT + dt_j);
  }

  // ---- stage 1: tracking update. A pipelined kernel's stage 1 consumes the
  // voltages the *previous* revolution computed (the pipeline registers);
  // the plain kernel consumes this revolution's.
  const double use_vr = cfg_.pipelined ? pipe_[0] : vr;
  const double g_new = gamma_r + qm * use_vr;
  const double g2 = 1.0 / (g_new * g_new);
  const double eta = cfg_.ring.alpha_c - g2;
  const double nbeta2 = 1.0 - g2;
  const double nbeta = std::sqrt(nbeta2);
  const double drift = lr * eta / (nbeta * nbeta2 * g_new * kSpeedOfLight);
  states_[static_cast<std::size_t>(s_gamma_)] = g_new;
  for (int j = 0; j < nb; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    const double use_va = cfg_.pipelined ? pipe_[1 + sj] : va[sj];
    const std::size_t ig = static_cast<std::size_t>(s_dgamma_[sj]);
    const std::size_t it = static_cast<std::size_t>(s_dt_[sj]);
    const double dg_new = states_[ig] + qm * (use_va - use_vr);
    states_[ig] = dg_new;
    states_[it] = states_[it] + drift * dg_new;
  }
  // Latch this revolution's stage-0 voltages for the next one.
  pipe_[0] = vr;
  for (int j = 0; j < nb; ++j) {
    pipe_[1 + static_cast<std::size_t>(j)] = va[static_cast<std::size_t>(j)];
  }
}

void HostReferenceModel::run_analytic() {
  const double qm = cfg_.ion.charge_over_mc2();
  const double lr = cfg_.ring.circumference_m;
  const int nb = cfg_.n_bunches;
  const double v_hat = params_[static_cast<std::size_t>(p_v_hat_)];
  const double gap_phase = params_[static_cast<std::size_t>(p_gap_phase_)];
  const double gamma_r = states_[static_cast<std::size_t>(s_gamma_)];

  // ---- stage 0: timing + on-chip waveform synthesis ----------------------
  const double period = bus_->read(SensorRegion::kPeriod, 0.0);
  const double ginv = 1.0 / (gamma_r * gamma_r);
  const double beta = std::sqrt(1.0 - ginv);
  const double t_r = lr / (beta * kSpeedOfLight);
  const double dT = t_r - period;
  const double omega =
      (kTwoPi * static_cast<double>(cfg_.ring.harmonic)) / period;
  // V_R = 0: the reference particle rides the undisturbed zero crossing, and
  // as a kernel *constant* it is served to stage 1 directly (no pipe reg).
  const double vr = 0.0;
  std::vector<double> va(static_cast<std::size_t>(nb));
  for (int j = 0; j < nb; ++j) {
    const double dt_j = states_[static_cast<std::size_t>(
        s_dt_[static_cast<std::size_t>(j)])];
    va[static_cast<std::size_t>(j)] =
        v_hat * cordic_sin(omega * (dT + dt_j) + gap_phase);
  }
  for (int j = 0; j < nb; ++j) {
    const double dt_j = states_[static_cast<std::size_t>(
        s_dt_[static_cast<std::size_t>(j)])];
    bus_->write(SensorRegion::kActuator, static_cast<double>(j), dT + dt_j);
  }

  // ---- stage 1 ------------------------------------------------------------
  const double g_new = gamma_r + qm * vr;
  const double g2 = 1.0 / (g_new * g_new);
  const double eta = cfg_.ring.alpha_c - g2;
  const double nbeta2 = 1.0 - g2;
  const double nbeta = std::sqrt(nbeta2);
  const double drift = lr * eta / (nbeta * nbeta2 * g_new * kSpeedOfLight);
  states_[static_cast<std::size_t>(s_gamma_)] = g_new;
  for (int j = 0; j < nb; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    const double use_va = cfg_.pipelined ? pipe_[1 + sj] : va[sj];
    const std::size_t ig = static_cast<std::size_t>(s_dgamma_[sj]);
    const std::size_t it = static_cast<std::size_t>(s_dt_[sj]);
    const double dg_new = states_[ig] + qm * (use_va - vr);
    states_[ig] = dg_new;
    states_[it] = states_[it] + drift * dg_new;
  }
  pipe_[0] = vr;
  for (int j = 0; j < nb; ++j) {
    pipe_[1 + static_cast<std::size_t>(j)] = va[static_cast<std::size_t>(j)];
  }
}

}  // namespace citl::oracle
