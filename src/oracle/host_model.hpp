// Pure-double host reference model of the beam-tracking kernels.
//
// The differential oracle's ground truth: an independent reimplementation of
// the per-revolution recursion (eqs. (2), (3), (5), (6) plus the §IV-B
// interpolated buffer sensing) written directly in C++ double arithmetic. It
// shares nothing with the CGRA toolchain except the bus protocol and the
// CORDIC primitive (the trig tables are the PE's *specification*, not part
// of the machinery under test) — so any divergence implicates the frontend,
// the scheduler, the interpreters or the kernel generator, not this model.
//
// The C++ expressions mirror the generated kernel source operation for
// operation in the same association order. Because every machine operator in
// f64 mode is the identical IEEE binary64 operation (cgra/exec.hpp), the
// host model agrees *bit-exactly* with a correct f64 machine — which is what
// lets the oracle demand a zero-ULP budget on that pair and catch one-ulp
// regressions.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cgra/kernels.hpp"
#include "cgra/machine.hpp"
#include "cgra/sensor.hpp"

namespace citl::oracle {

class HostReferenceModel final : public cgra::BeamModel {
 public:
  /// `analytic` selects the CORDIC waveform-synthesis recursion (the
  /// TurnLoopConfig::synthesize_waveform kernel); otherwise the sampled
  /// kernel is mirrored. `cfg` must be the *effective* kernel config the
  /// kernel was generated from (hil::TurnLoop::effective_kernel_config).
  /// The ramp kernel has no host mirror (the oracle covers the turn loop).
  HostReferenceModel(std::shared_ptr<const cgra::CompiledKernel> kernel,
                     const cgra::BeamKernelConfig& cfg, bool analytic,
                     cgra::SensorBus& bus);

  [[nodiscard]] const cgra::CompiledKernel& kernel() const noexcept override {
    return *kernel_;
  }
  [[nodiscard]] std::size_t lanes() const noexcept override { return 1; }

  void reset() override;

  void set_param(cgra::ParamHandle h, double value, std::size_t lane) override;
  [[nodiscard]] double param(cgra::ParamHandle h,
                             std::size_t lane) const override;
  void set_state(cgra::StateHandle h, double value, std::size_t lane) override;
  [[nodiscard]] double state(cgra::StateHandle h,
                             std::size_t lane) const override;

  unsigned run_iteration_all_lanes() override;

  void snapshot_states(std::size_t lane, double* out) const override;
  void restore_states(std::size_t lane, const double* values) override;
  /// The host model's cross-iteration image is exactly the values the
  /// pipelined kernel latches: V_R and the per-bunch V_j of the previous
  /// revolution (plain mode keeps the slots but never reads them).
  [[nodiscard]] std::size_t pipe_reg_count() const noexcept override {
    return pipe_.size();
  }
  void snapshot_pipe_regs(std::size_t lane, double* out) const override;
  void restore_pipe_regs(std::size_t lane, const double* values) override;

 private:
  void check_lane(std::size_t lane) const;
  void run_sampled();
  void run_analytic();

  std::shared_ptr<const cgra::CompiledKernel> kernel_;
  cgra::BeamKernelConfig cfg_;
  bool analytic_;
  cgra::SensorBus* bus_;

  // Tables aligned with the kernel's param/state tables so ParamHandle /
  // StateHandle indices address the same variables as on the machines.
  std::vector<double> params_;
  std::vector<double> states_;
  int s_gamma_ = -1;             ///< state index of gamma_r
  std::vector<int> s_dgamma_;    ///< state index of dgamma<j>
  std::vector<int> s_dt_;        ///< state index of dt<j>
  int p_v_scale_ = -1;           ///< param index (sampled kernel)
  int p_v_hat_ = -1;             ///< param index (analytic kernel)
  int p_gap_phase_ = -1;         ///< param index (analytic kernel)

  std::vector<double> pipe_;     ///< [0] = V_R, [1 + j] = V_j
};

}  // namespace citl::oracle
