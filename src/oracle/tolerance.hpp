// Cross-fidelity comparison machinery: fidelity tags, ULP distance, per-
// quantity tolerance budgets and the log2-bucketed ULP histogram the
// differential oracle reports.
//
// The oracle compares the same scenario across simulation fidelities whose
// *defined* agreement differs: serial vs batched execution of one machine
// precision is contractually bit-identical (docs/BATCHING.md), the host
// double-precision reference vs the f64 machine agrees to the last bit as
// long as compiler+scheduler+interpreter preserve the expression trees, and
// f32 machine arithmetic drifts from the f64 reference by an amount the
// budget bounds per quantity. A comparison passes when EITHER the absolute
// or the ULP criterion holds — absolute tolerances cover quantities that
// legitimately cross zero (where relative/ULP distance explodes), ULP
// tolerances cover large-magnitude quantities where a fixed absolute bound
// would be either vacuous or unreachable.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

namespace citl::oracle {

/// A way of executing one closed-loop turn scenario. Host = the pure-double
/// reference recursion (oracle/host_model.hpp); serial = CgraMachine;
/// batched = lane 0 of a BatchedCgraMachine (with sibling lanes running the
/// identical scenario).
enum class Fidelity : std::uint8_t {
  kHostF64,
  kSerialF32,
  kSerialF64,
  kBatchedF32,
  kBatchedF64,
};

[[nodiscard]] constexpr const char* to_string(Fidelity f) noexcept {
  switch (f) {
    case Fidelity::kHostF64: return "host_f64";
    case Fidelity::kSerialF32: return "serial_f32";
    case Fidelity::kSerialF64: return "serial_f64";
    case Fidelity::kBatchedF32: return "batched_f32";
    case Fidelity::kBatchedF64: return "batched_f64";
  }
  return "?";
}

/// True when the fidelity's machine arithmetic is IEEE binary32.
[[nodiscard]] constexpr bool is_f32(Fidelity f) noexcept {
  return f == Fidelity::kSerialF32 || f == Fidelity::kBatchedF32;
}

/// ULP distance between two doubles: how many representable binary64 values
/// lie between them (0 = bit-identical up to ±0.0). Uses the standard
/// monotone mapping of IEEE bit patterns onto a signed integer line, so the
/// distance is well defined across zero and between the two signs. NaNs:
/// both-NaN compares equal (distance 0 — a reference NaN matched by a
/// candidate NaN is agreement), exactly one NaN is maximal disagreement.
[[nodiscard]] inline std::uint64_t ulp_distance64(double a, double b) noexcept {
  const bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return (na && nb) ? 0 : ~std::uint64_t{0};
  const auto key = [](double v) noexcept {
    const auto i = std::bit_cast<std::int64_t>(v);
    return i >= 0 ? i : std::numeric_limits<std::int64_t>::min() - i;
  };
  const std::int64_t ka = key(a), kb = key(b);
  return ka >= kb ? static_cast<std::uint64_t>(ka) - static_cast<std::uint64_t>(kb)
                  : static_cast<std::uint64_t>(kb) - static_cast<std::uint64_t>(ka);
}

/// ULP distance in the binary32 lattice. This is the honest metric when one
/// side of the comparison ran in f32: measuring its output against an f64
/// reference in binary64 ULPs would report astronomic numbers for a
/// perfectly rounded result.
[[nodiscard]] inline std::uint64_t ulp_distance32(float a, float b) noexcept {
  const bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return (na && nb) ? 0 : ~std::uint64_t{0};
  const auto key = [](float v) noexcept {
    const auto i =
        static_cast<std::int64_t>(std::bit_cast<std::int32_t>(v));
    return i >= 0 ? i : std::numeric_limits<std::int32_t>::min() - i;
  };
  const std::int64_t ka = key(a), kb = key(b);
  return static_cast<std::uint64_t>(ka >= kb ? ka - kb : kb - ka);
}

/// One quantity's tolerance: the comparison passes if the ULP distance is
/// within `ulp_tol` OR the absolute difference is within `abs_tol`.
/// `circular` marks angle quantities compared on the circle (the absolute
/// criterion uses the wrapped difference; a pair straddling the ±π seam is
/// close, not 2π apart).
struct ToleranceSpec {
  double abs_tol = 0.0;
  std::uint64_t ulp_tol = 0;
  bool circular = false;

  [[nodiscard]] bool passes(double abs_diff, std::uint64_t ulp) const noexcept {
    return ulp <= ulp_tol || abs_diff <= abs_tol;
  }
};

/// Per-quantity budgets for the four compared observables of a turn
/// scenario. Defaults (exact()) demand bit identity; for_pair() relaxes
/// them to the measured agreement class of a fidelity pair.
struct ToleranceBudget {
  ToleranceSpec gamma;   ///< reference Lorentz factor gamma_r
  ToleranceSpec dgamma;  ///< bunch-0 energy deviation
  ToleranceSpec dt;      ///< bunch-0 arrival-time deviation [s]
  ToleranceSpec phase;   ///< measured bunch phase [rad] (circular)

  [[nodiscard]] static ToleranceBudget exact() noexcept {
    ToleranceBudget b;
    b.phase.circular = true;
    return b;
  }

  /// The expected agreement class of a fidelity pair:
  ///  * serial vs batched at one precision: bit identity (the SoA engine's
  ///    determinism contract),
  ///  * host f64 vs either f64 machine: bit identity — the host reference
  ///    mirrors the kernel's expression trees in plain double, and every
  ///    machine operator in f64 mode is that same double operation,
  ///  * anything vs an f32 machine: f32 rounding accumulated over the run,
  ///    compared in the binary32 lattice (see is_f32 domain selection).
  [[nodiscard]] static ToleranceBudget for_pair(Fidelity a,
                                                Fidelity b) noexcept {
    ToleranceBudget budget = exact();
    if (is_f32(a) != is_f32(b)) {
      // Mixed precision: bound the secular drift of a multi-thousand-turn
      // synchrotron oscillation at f32 working precision (tuned against
      // tests/test_oracle.cpp's seeded grid, with ~8x headroom).
      budget.gamma = {1.0e-6, 1u << 8, false};
      budget.dgamma = {2.0e-6, 1u << 14, false};
      budget.dt = {5.0e-10, 1u << 14, false};
      budget.phase = {2.0e-2, 1u << 14, true};
    }
    return budget;
  }

  [[nodiscard]] const ToleranceSpec& spec_for(
      std::string_view quantity) const noexcept {
    if (quantity == "gamma_r") return gamma;
    if (quantity == "dgamma") return dgamma;
    if (quantity == "dt_s") return dt;
    return phase;
  }
};

/// Histogram of observed ULP distances in log2 buckets: bucket 0 counts
/// exact matches, bucket k >= 1 counts distances in [2^(k-1), 2^k). The
/// shape separates "last-bit noise" (buckets 1-2) from "systematically
/// different computation" (high buckets) at a glance, and the repro
/// artifact embeds it so a regression's magnitude survives into the report.
struct UlpHistogram {
  static constexpr int kBuckets = 65;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t max_ulp = 0;
  std::uint64_t samples = 0;

  void add(std::uint64_t ulp) noexcept {
    ++samples;
    if (ulp > max_ulp) max_ulp = ulp;
    ++buckets[static_cast<std::size_t>(bucket_of(ulp))];
  }

  [[nodiscard]] static int bucket_of(std::uint64_t ulp) noexcept {
    return ulp == 0 ? 0 : std::bit_width(ulp);
  }
};

}  // namespace citl::oracle
