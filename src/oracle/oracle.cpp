#include "oracle/oracle.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "cgra/batch.hpp"
#include "core/error.hpp"
#include "core/units.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "obs/recorder.hpp"
#include "oracle/host_model.hpp"

namespace citl::oracle {
namespace {

constexpr std::array<const char*, kQuantityCount> kQuantityNames = {
    "gamma_r", "dgamma", "dt_s", "phase_rad"};

/// ULP counts enter reports as doubles; everything up to 2^53 is exact and
/// anything beyond (including the one-NaN sentinel) saturates to 2^53.
[[nodiscard]] double ulp_to_double(std::uint64_t ulp) noexcept {
  constexpr std::uint64_t kMax = std::uint64_t{1} << 53;
  return ulp >= kMax ? static_cast<double>(kMax) : static_cast<double>(ulp);
}

struct QuantityCmp {
  double expected = 0.0;
  double actual = 0.0;
  std::uint64_t ulp = 0;
  double abs_diff = 0.0;
  bool pass = true;
};

/// Compares one quantity under its spec. Circular quantities (the measured
/// phase) are compared on the circle: the absolute criterion uses the
/// wrapped difference, and the ULP distance is *synthesised* as the distance
/// from π to π + |Δwrapped| — a pair straddling the ±π seam would otherwise
/// report an astronomic raw ULP distance for a physically tiny disagreement.
[[nodiscard]] QuantityCmp compare_quantity(double expected, double actual,
                                           const ToleranceSpec& spec,
                                           bool f32_domain) {
  QuantityCmp c;
  c.expected = expected;
  c.actual = actual;
  const bool ne = std::isnan(expected), na = std::isnan(actual);
  if (ne || na) {
    if (ne && na) {
      c.ulp = 0;
      c.abs_diff = 0.0;
    } else {
      c.ulp = ~std::uint64_t{0};
      c.abs_diff = std::numeric_limits<double>::infinity();
    }
  } else if (spec.circular) {
    c.abs_diff = std::fabs(wrap_angle(expected - actual));
    c.ulp = f32_domain
                ? ulp_distance32(static_cast<float>(kPi),
                                 static_cast<float>(kPi + c.abs_diff))
                : ulp_distance64(kPi, kPi + c.abs_diff);
  } else {
    c.abs_diff = std::fabs(expected - actual);
    c.ulp = f32_domain ? ulp_distance32(static_cast<float>(expected),
                                        static_cast<float>(actual))
                       : ulp_distance64(expected, actual);
  }
  c.pass = spec.passes(c.abs_diff, c.ulp);
  return c;
}

using TurnCmp = std::array<QuantityCmp, kQuantityCount>;

[[nodiscard]] bool any_fail(const TurnCmp& cmp) noexcept {
  for (const QuantityCmp& q : cmp) {
    if (!q.pass) return true;
  }
  return false;
}

/// One fidelity's live execution of the scenario: the TurnLoop(s) plus the
/// model they execute through. Batched fidelities run `batch_lanes` sibling
/// loops of the identical scenario as lanes of one BatchedCgraMachine and
/// report lane 0 — so the comparison exercises the SoA engine's lane
/// bookkeeping, not just a trivial 1-lane batch.
class FidelityRun {
 public:
  FidelityRun(Fidelity fidelity, const hil::TurnLoopConfig& config,
              std::shared_ptr<const cgra::CompiledKernel> kernel,
              std::size_t batch_lanes)
      : fidelity_(fidelity), kernel_(std::move(kernel)) {
    using hil::TurnLoop;
    switch (fidelity_) {
      case Fidelity::kSerialF32:
        loops_.push_back(std::make_unique<TurnLoop>(config, kernel_));
        break;
      case Fidelity::kSerialF64: {
        auto& loop = *loops_.emplace_back(std::make_unique<TurnLoop>(
            config, kernel_, TurnLoop::ExternalModel{}));
        model_ = std::make_unique<cgra::CgraMachine>(
            *kernel_, loop.cgra_bus(), cgra::Precision::kFloat64,
            config.exec_tier);
        loop.attach_model(*model_, 0);
        break;
      }
      case Fidelity::kHostF64: {
        auto& loop = *loops_.emplace_back(std::make_unique<TurnLoop>(
            config, kernel_, TurnLoop::ExternalModel{}));
        model_ = std::make_unique<HostReferenceModel>(
            kernel_, TurnLoop::effective_kernel_config(config),
            config.synthesize_waveform, loop.cgra_bus());
        loop.attach_model(*model_, 0);
        break;
      }
      case Fidelity::kBatchedF32:
      case Fidelity::kBatchedF64: {
        std::vector<cgra::SensorBus*> buses;
        buses.reserve(batch_lanes);
        for (std::size_t i = 0; i < batch_lanes; ++i) {
          auto& loop = *loops_.emplace_back(std::make_unique<TurnLoop>(
              config, kernel_, TurnLoop::ExternalModel{}));
          buses.push_back(&loop.cgra_bus());
        }
        adapter_ = std::make_unique<cgra::PerLaneBusAdapter>(std::move(buses));
        model_ = std::make_unique<cgra::BatchedCgraMachine>(
            *kernel_, batch_lanes, *adapter_,
            fidelity_ == Fidelity::kBatchedF64 ? cgra::Precision::kFloat64
                                               : cgra::Precision::kFloat32,
            config.exec_tier);
        for (std::size_t i = 0; i < batch_lanes; ++i) {
          loops_[i]->attach_model(*model_, i);
        }
        break;
      }
    }
    h_gamma_ = cgra::state_handle(*kernel_, "gamma_r");
  }

  /// Runs one revolution on every lane; returns lane 0's observables.
  hil::TurnRecord step() {
    for (auto& loop : loops_) loop->begin_turn();
    const unsigned cycles = model_ != nullptr
                                ? model_->run_iteration_all_lanes()
                                : loops_.front()->model().run_iteration_all_lanes();
    hil::TurnRecord rec0{};
    for (std::size_t i = 0; i < loops_.size(); ++i) {
      const hil::TurnRecord r = loops_[i]->finish_turn(cycles);
      if (i == 0) rec0 = r;
    }
    return rec0;
  }

  [[nodiscard]] double gamma() const {
    return loops_.front()->model().state(h_gamma_, loops_.front()->lane());
  }
  [[nodiscard]] std::int64_t turn() const noexcept {
    return loops_.front()->turn();
  }

  using Snapshot = std::vector<hil::TurnLoop::Checkpoint>;
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.reserve(loops_.size());
    for (const auto& loop : loops_) s.push_back(loop->checkpoint());
    return s;
  }
  void restore(const Snapshot& s) {
    CITL_CHECK(s.size() == loops_.size());
    for (std::size_t i = 0; i < loops_.size(); ++i) loops_[i]->restore(s[i]);
  }

 private:
  Fidelity fidelity_;
  std::shared_ptr<const cgra::CompiledKernel> kernel_;
  // Destruction order matters: model_ references the loops' buses and the
  // kernel, so it is declared (and therefore destroyed) after them... i.e.
  // declared last, destroyed first.
  std::vector<std::unique_ptr<hil::TurnLoop>> loops_;
  std::unique_ptr<cgra::PerLaneBusAdapter> adapter_;
  std::unique_ptr<cgra::BeamModel> model_;  ///< null: loops_[0] owns machine
  cgra::StateHandle h_gamma_;
};

[[nodiscard]] const ToleranceSpec& spec_of(const ToleranceBudget& budget,
                                           std::size_t q) noexcept {
  switch (q) {
    case 0: return budget.gamma;
    case 1: return budget.dgamma;
    case 2: return budget.dt;
    default: return budget.phase;
  }
}

[[nodiscard]] TurnCmp compare_turn(const hil::TurnRecord& expected,
                                   double expected_gamma,
                                   const hil::TurnRecord& actual,
                                   double actual_gamma,
                                   const ToleranceBudget& budget,
                                   bool f32_domain) {
  const std::array<double, kQuantityCount> e = {expected_gamma,
                                                expected.dgamma, expected.dt_s,
                                                expected.phase_rad};
  const std::array<double, kQuantityCount> a = {actual_gamma, actual.dgamma,
                                                actual.dt_s, actual.phase_rad};
  TurnCmp cmp;
  for (std::size_t q = 0; q < kQuantityCount; ++q) {
    cmp[q] = compare_quantity(e[q], a[q], spec_of(budget, q), f32_domain);
  }
  return cmp;
}

[[nodiscard]] TraceRow make_row(std::int64_t turn, const TurnCmp& cmp) {
  TraceRow row;
  row.turn = turn;
  for (std::size_t q = 0; q < kQuantityCount; ++q) {
    row.expected[q] = cmp[q].expected;
    row.actual[q] = cmp[q].actual;
    row.ulp[q] = ulp_to_double(cmp[q].ulp);
  }
  return row;
}

constexpr std::int64_t kTraceBefore = 8;  ///< trace rows kept pre-divergence
constexpr std::int64_t kTraceAfter = 8;   ///< rows recorded past divergence

void append_budget_json(io::JsonWriter& w, const char* name,
                        const ToleranceSpec& spec) {
  w.key(name).begin_object();
  w.key("abs_tol").value(spec.abs_tol);
  w.key("ulp_tol").value(std::uint64_t{spec.ulp_tol});
  w.key("circular").value(spec.circular);
  w.end_object();
}

void write_artifacts(OracleReport& report,
                     const hil::TurnLoopConfig& loop_config,
                     const OracleConfig& oracle_config,
                     const ToleranceBudget& budget,
                     const std::string& candidate_kernel_name) {
  namespace fs = std::filesystem;
  fs::create_directories(oracle_config.artifact_dir);
  const std::string csv_name = oracle_config.artifact_stem + "_trace.csv";
  const std::string json_path = (fs::path(oracle_config.artifact_dir) /
                                 (oracle_config.artifact_stem + ".json"))
                                    .string();
  const std::string csv_path =
      (fs::path(oracle_config.artifact_dir) / csv_name).string();

  // Trace window as CSV, reloadable through parse_csv/csv_parse_number.
  std::vector<io::Column> columns;
  columns.push_back({"turn", {}, {}});
  for (std::size_t q = 0; q < kQuantityCount; ++q) {
    const std::string base = kQuantityNames[q];
    columns.push_back({base + "_expected", {}, {}});
    columns.push_back({base + "_actual", {}, {}});
    columns.push_back({base + "_ulp", {}, {}});
  }
  for (const TraceRow& row : report.trace) {
    columns[0].values.push_back(static_cast<double>(row.turn));
    for (std::size_t q = 0; q < kQuantityCount; ++q) {
      columns[1 + 3 * q].values.push_back(row.expected[q]);
      columns[2 + 3 * q].values.push_back(row.actual[q]);
      columns[3 + 3 * q].values.push_back(row.ulp[q]);
    }
  }
  io::write_csv(csv_path, columns);

  io::JsonWriter w;
  w.begin_object();
  w.key("schema").value("citl-oracle-repro-v1");
  w.key("reference").value(to_string(oracle_config.reference));
  w.key("candidate").value(to_string(oracle_config.candidate));
  w.key("kernel").value(candidate_kernel_name);
  w.key("budget").begin_object();
  append_budget_json(w, "gamma_r", budget.gamma);
  append_budget_json(w, "dgamma", budget.dgamma);
  append_budget_json(w, "dt_s", budget.dt);
  append_budget_json(w, "phase_rad", budget.phase);
  w.end_object();

  // The *minimal* scenario — what a developer replays first.
  const hil::TurnLoopConfig& mc = report.minimal_config;
  w.key("scenario").begin_object();
  w.key("turns").value(report.minimal_turns);
  w.key("f_ref_hz").value(mc.f_ref_hz);
  w.key("gap_voltage_v").value(mc.gap_voltage_v);
  w.key("harmonic").value(static_cast<std::int64_t>(mc.kernel.ring.harmonic));
  w.key("n_bunches").value(static_cast<std::int64_t>(mc.kernel.n_bunches));
  w.key("pipelined").value(mc.kernel.pipelined);
  w.key("synthesize_waveform").value(mc.synthesize_waveform);
  w.key("control_enabled").value(mc.control_enabled);
  w.key("phase_noise_rad").value(mc.phase_noise_rad);
  w.key("noise_seed").value(std::uint64_t{mc.noise_seed});
  w.key("quantise_period").value(mc.quantise_period);
  if (mc.jumps.has_value()) {
    w.key("jumps").begin_object();
    w.key("amplitude_rad").value(mc.jumps->amplitude_rad());
    w.key("interval_s").value(mc.jumps->interval_s());
    w.key("start_s").value(mc.jumps->start_s());
    w.end_object();
  }
  w.key("fault_entries")
      .value(static_cast<std::int64_t>(mc.faults.entries.size()));
  w.key("supervised").value(mc.supervisor.enabled);
  w.end_object();

  w.key("divergence").begin_object();
  w.key("first_divergent_turn").value(report.first_divergent_turn);
  w.key("bisected_turn").value(report.bisected_turn);
  w.key("max_ulp_err").value(report.max_ulp_err);
  w.key("quantities").begin_array();
  for (const QuantityDivergence& d : report.divergences) {
    w.begin_object();
    w.key("name").value(d.name);
    w.key("expected").value(d.expected);
    w.key("actual").value(d.actual);
    w.key("ulp").value(std::uint64_t{d.ulp});
    w.key("abs_diff").value(d.abs_diff);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("ulp_histogram").begin_array();
  for (int b = 0; b < UlpHistogram::kBuckets; ++b) {
    const std::uint64_t count =
        report.histogram.buckets[static_cast<std::size_t>(b)];
    if (count == 0) continue;
    w.begin_object();
    w.key("bucket").value(static_cast<std::int64_t>(b));
    w.key("count").value(count);
    w.end_object();
  }
  w.end_array();

  w.key("shrink").begin_array();
  for (const std::string& line : report.shrink_log) w.value(line);
  w.end_array();
  w.key("trace_csv").value(csv_name);
  w.end_object();

  io::write_text_file(json_path, w.str());
  report.artifact_json = json_path;
  report.artifact_csv = csv_path;
}

}  // namespace

const char* quantity_name(std::size_t q) noexcept {
  return q < kQuantityCount ? kQuantityNames[q] : "?";
}

OracleReport run_oracle(const hil::TurnLoopConfig& loop_config,
                        const OracleConfig& oracle_config) {
  if (oracle_config.turns < 1) {
    throw ConfigError("oracle: turns must be >= 1");
  }
  if (oracle_config.batch_lanes < 1) {
    throw ConfigError("oracle: batch_lanes must be >= 1");
  }
  if (oracle_config.candidate_kernel != nullptr &&
      oracle_config.candidate == Fidelity::kHostF64) {
    throw ConfigError(
        "oracle: a candidate kernel override needs a machine-backed "
        "candidate fidelity — the host reference does not execute the "
        "kernel's context memories",
        ErrorCode::kUnsupported);
  }
  if (oracle_config.reference == oracle_config.candidate &&
      oracle_config.candidate_kernel == nullptr) {
    throw ConfigError(
        "oracle: reference and candidate fidelity are identical; such a "
        "comparison only makes sense with a candidate kernel override");
  }

  const ToleranceBudget budget = oracle_config.budget.value_or(
      ToleranceBudget::for_pair(oracle_config.reference,
                                oracle_config.candidate));
  const bool f32_domain =
      is_f32(oracle_config.reference) || is_f32(oracle_config.candidate);

  // Compile once (through the loop's own path, so the kernel is exactly what
  // a plain TurnLoop would run); both sides share the artifact unless the
  // candidate executes a perturbed override.
  std::shared_ptr<const cgra::CompiledKernel> kernel =
      hil::TurnLoop(loop_config).kernel_ptr();
  std::shared_ptr<const cgra::CompiledKernel> candidate_kernel =
      oracle_config.candidate_kernel != nullptr ? oracle_config.candidate_kernel
                                                : kernel;

  // Fault injector and supervisor state is outside the checkpoint image, so
  // scenarios carrying either are compared turn-by-turn without rollback.
  const bool checkpointable =
      loop_config.faults.empty() && !loop_config.supervisor.enabled;
  const std::int64_t stride =
      checkpointable ? std::max<std::int64_t>(1, oracle_config.checkpoint_stride)
                     : 1;

  auto make_reference = [&] {
    return std::make_unique<FidelityRun>(oracle_config.reference, loop_config,
                                         kernel, oracle_config.batch_lanes);
  };
  auto make_candidate = [&] {
    return std::make_unique<FidelityRun>(oracle_config.candidate, loop_config,
                                         candidate_kernel,
                                         oracle_config.batch_lanes);
  };

  OracleReport report;
  report.minimal_config = loop_config;
  report.minimal_turns = oracle_config.turns;

  auto reference = make_reference();
  auto candidate = make_candidate();

  std::int64_t detect_turn = -1;  ///< 0-based turn of the failing comparison
  TurnCmp detect_cmp{};

  if (stride == 1) {
    // Dense mode: compare every turn; detection IS the exact answer, and the
    // rolling window doubles as the trace head.
    for (std::int64_t t = 0; t < oracle_config.turns; ++t) {
      const hil::TurnRecord er = reference->step();
      const hil::TurnRecord ar = candidate->step();
      const TurnCmp cmp = compare_turn(er, reference->gamma(), ar,
                                       candidate->gamma(), budget, f32_domain);
      report.turns_run = t + 1;
      if (detect_turn < 0) {
        for (const QuantityCmp& q : cmp) report.histogram.add(q.ulp);
        report.trace.push_back(make_row(t, cmp));
        if (report.trace.size() > static_cast<std::size_t>(kTraceBefore + 1)) {
          report.trace.erase(report.trace.begin());
        }
        if (any_fail(cmp)) {
          detect_turn = t;
          detect_cmp = cmp;
        }
      } else {
        report.trace.push_back(make_row(t, cmp));
        if (t - detect_turn >= kTraceAfter) break;
      }
    }
    report.first_divergent_turn = detect_turn;
    report.bisected_turn = detect_turn;
  } else {
    // Strided mode: compare only at window ends, checkpointing every clean
    // boundary; a failing window is bisected with rollback probes and then
    // confirmed with a turn-by-turn scan from the last clean checkpoint.
    FidelityRun::Snapshot ref_cp = reference->snapshot();
    FidelityRun::Snapshot cand_cp = candidate->snapshot();
    std::int64_t ck_turn = 0;

    for (std::int64_t t = 0; t < oracle_config.turns; ++t) {
      const hil::TurnRecord er = reference->step();
      const hil::TurnRecord ar = candidate->step();
      report.turns_run = t + 1;
      const bool boundary =
          ((t + 1) % stride == 0) || (t == oracle_config.turns - 1);
      if (!boundary) continue;
      const TurnCmp cmp = compare_turn(er, reference->gamma(), ar,
                                       candidate->gamma(), budget, f32_domain);
      for (const QuantityCmp& q : cmp) report.histogram.add(q.ulp);
      if (any_fail(cmp)) {
        detect_turn = t;
        break;
      }
      ref_cp = reference->snapshot();
      cand_cp = candidate->snapshot();
      ck_turn = t + 1;
    }

    if (detect_turn >= 0) {
      // Binary search over (ck_turn .. detect_turn] for the first failing
      // turn. Each probe rolls both fidelities back to the clean checkpoint
      // and replays up to the probe turn — bit-exact thanks to the
      // state+pipe-reg checkpoint image.
      std::int64_t lo = ck_turn, hi = detect_turn;
      while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        reference->restore(ref_cp);
        candidate->restore(cand_cp);
        hil::TurnRecord er{}, ar{};
        for (std::int64_t u = ck_turn; u <= mid; ++u) {
          er = reference->step();
          ar = candidate->step();
        }
        const TurnCmp cmp = compare_turn(er, reference->gamma(), ar,
                                         candidate->gamma(), budget,
                                         f32_domain);
        if (any_fail(cmp)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      report.bisected_turn = lo;

      // Confirmation scan: the reported first_divergent_turn comes from a
      // linear sweep, so a non-monotone divergence (pass-fail-pass inside
      // the window) cannot fool the bisection into a wrong answer.
      reference->restore(ref_cp);
      candidate->restore(cand_cp);
      report.trace.clear();
      for (std::int64_t u = ck_turn; u < oracle_config.turns; ++u) {
        const hil::TurnRecord er = reference->step();
        const hil::TurnRecord ar = candidate->step();
        const TurnCmp cmp = compare_turn(er, reference->gamma(), ar,
                                         candidate->gamma(), budget,
                                         f32_domain);
        if (report.first_divergent_turn < 0) {
          report.histogram.add(cmp[0].ulp);
          report.histogram.add(cmp[1].ulp);
          report.histogram.add(cmp[2].ulp);
          report.histogram.add(cmp[3].ulp);
          report.trace.push_back(make_row(u, cmp));
          if (report.trace.size() >
              static_cast<std::size_t>(kTraceBefore + 1)) {
            report.trace.erase(report.trace.begin());
          }
          if (any_fail(cmp)) {
            report.first_divergent_turn = u;
            detect_cmp = cmp;
          }
        } else {
          report.trace.push_back(make_row(u, cmp));
          if (u - report.first_divergent_turn >= kTraceAfter) break;
        }
      }
      CITL_CHECK_MSG(report.first_divergent_turn >= 0,
                     "oracle: window-end divergence vanished in the scan");
    }
  }

  report.diverged = report.first_divergent_turn >= 0;
  report.max_ulp_err = ulp_to_double(report.histogram.max_ulp);

  if (report.diverged) {
    // A divergence is a black-box moment like a Supervisor abort: record it
    // and flush the flight recorder (no-op when no dump path is set).
    obs::FlightRecorder::global().record(
        obs::EventKind::kOracleDivergence, report.first_divergent_turn, 0.0,
        static_cast<double>(report.first_divergent_turn),
        report.max_ulp_err);
    obs::FlightRecorder::global().dump_to_file("oracle_divergence");
    for (std::size_t q = 0; q < kQuantityCount; ++q) {
      if (detect_cmp[q].pass) continue;
      report.divergences.push_back({kQuantityNames[q], detect_cmp[q].expected,
                                    detect_cmp[q].actual, detect_cmp[q].ulp,
                                    detect_cmp[q].abs_diff});
    }
  }

  if (report.diverged && oracle_config.shrink) {
    // Delta-debug the scenario: each axis is dropped and the simplification
    // kept only if the pair still diverges within the (shrinking) turn
    // horizon. Trials compare every turn — they are short by construction.
    hil::TurnLoopConfig min_cfg = loop_config;
    std::int64_t min_turns = report.first_divergent_turn + 1;
    report.shrink_log.push_back(
        "truncate to " + std::to_string(min_turns) +
        " turns: kept (divergence is the final turn)");

    auto first_divergence = [&](const hil::TurnLoopConfig& cfg,
                                std::int64_t turns) -> std::int64_t {
      FidelityRun ref_trial(oracle_config.reference, cfg, kernel,
                            oracle_config.batch_lanes);
      FidelityRun cand_trial(oracle_config.candidate, cfg, candidate_kernel,
                             oracle_config.batch_lanes);
      for (std::int64_t u = 0; u < turns; ++u) {
        const hil::TurnRecord er = ref_trial.step();
        const hil::TurnRecord ar = cand_trial.step();
        if (any_fail(compare_turn(er, ref_trial.gamma(), ar,
                                  cand_trial.gamma(), budget, f32_domain))) {
          return u;
        }
      }
      return -1;
    };

    auto try_simplify = [&](hil::TurnLoopConfig cfg, const std::string& what) {
      const std::int64_t at = first_divergence(cfg, min_turns);
      if (at >= 0) {
        min_cfg = std::move(cfg);
        min_turns = at + 1;
        report.shrink_log.push_back(what + ": kept (still diverges at turn " +
                                    std::to_string(at) + ")");
      } else {
        report.shrink_log.push_back(what + ": reverted (divergence vanished)");
      }
    };

    for (std::size_t i = min_cfg.faults.entries.size(); i-- > 0;) {
      hil::TurnLoopConfig cfg = min_cfg;
      cfg.faults.entries.erase(cfg.faults.entries.begin() +
                               static_cast<std::ptrdiff_t>(i));
      try_simplify(std::move(cfg), "drop fault entry " + std::to_string(i));
    }
    if (min_cfg.supervisor.enabled) {
      hil::TurnLoopConfig cfg = min_cfg;
      cfg.supervisor.enabled = false;
      try_simplify(std::move(cfg), "disable supervisor");
    }
    if (min_cfg.jumps.has_value()) {
      hil::TurnLoopConfig cfg = min_cfg;
      cfg.jumps.reset();
      try_simplify(std::move(cfg), "drop jump programme");
    }
    if (min_cfg.control_enabled) {
      hil::TurnLoopConfig cfg = min_cfg;
      cfg.control_enabled = false;
      try_simplify(std::move(cfg), "open control loop");
    }
    if (min_cfg.phase_noise_rad > 0.0) {
      hil::TurnLoopConfig cfg = min_cfg;
      cfg.phase_noise_rad = 0.0;
      try_simplify(std::move(cfg), "zero phase noise");
    }
    if (min_cfg.quantise_period) {
      hil::TurnLoopConfig cfg = min_cfg;
      cfg.quantise_period = false;
      try_simplify(std::move(cfg), "disable period quantisation");
    }

    report.minimal_config = min_cfg;
    report.minimal_turns = min_turns;
  }

  if (report.diverged && !oracle_config.artifact_dir.empty()) {
    write_artifacts(report, loop_config, oracle_config, budget,
                    candidate_kernel->name);
  }

  return report;
}

cgra::CompiledKernel perturb_kernel_constant(const cgra::CompiledKernel& kernel,
                                             double target_value,
                                             cgra::Precision precision) {
  std::vector<cgra::Node> nodes = kernel.dfg.nodes();
  bool found = false;
  for (cgra::Node& n : nodes) {
    if (n.kind != cgra::OpKind::kConst || n.constant != target_value) continue;
    // The nudge must survive the machine's constant quantisation: an f32
    // machine rounds every constant to binary32, where a one-ulp64 change
    // is invisible.
    n.constant =
        precision == cgra::Precision::kFloat32
            ? static_cast<double>(std::nextafterf(
                  static_cast<float>(target_value),
                  std::numeric_limits<float>::infinity()))
            : std::nextafter(target_value,
                             std::numeric_limits<double>::infinity());
    found = true;
    break;
  }
  if (!found) {
    throw ConfigError("perturb_kernel_constant: kernel '" + kernel.name +
                      "' has no constant equal to " +
                      io::csv_format_number(target_value));
  }
  cgra::CompiledKernel out;
  out.dfg = cgra::Dfg::restore(std::move(nodes), kernel.dfg.states(),
                               kernel.dfg.params(), kernel.dfg.stores());
  out.arch = kernel.arch;
  out.schedule = kernel.schedule;
  out.name = kernel.name + "+1ulp";
  return out;
}

std::vector<TraceRow> load_repro_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError("load_repro_trace: cannot open '" + path + "'",
                      ErrorCode::kNotFound);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::vector<std::string>> rows =
      io::parse_csv(buffer.str());
  if (rows.empty()) {
    throw ConfigError("load_repro_trace: '" + path + "' is empty");
  }

  std::vector<std::string> expected_header = {"turn"};
  for (std::size_t q = 0; q < kQuantityCount; ++q) {
    const std::string base = kQuantityNames[q];
    expected_header.push_back(base + "_expected");
    expected_header.push_back(base + "_actual");
    expected_header.push_back(base + "_ulp");
  }
  if (rows.front() != expected_header) {
    throw ConfigError("load_repro_trace: '" + path +
                      "' is not an oracle trace (unexpected header)");
  }

  std::vector<TraceRow> trace;
  trace.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& cells = rows[r];
    if (cells.size() != expected_header.size()) {
      throw ConfigError("load_repro_trace: row " + std::to_string(r) +
                        " of '" + path + "' has " +
                        std::to_string(cells.size()) + " cells, expected " +
                        std::to_string(expected_header.size()));
    }
    TraceRow row;
    row.turn = static_cast<std::int64_t>(io::csv_parse_number(cells[0]));
    for (std::size_t q = 0; q < kQuantityCount; ++q) {
      row.expected[q] = io::csv_parse_number(cells[1 + 3 * q]);
      row.actual[q] = io::csv_parse_number(cells[2 + 3 * q]);
      row.ulp[q] = io::csv_parse_number(cells[3 + 3 * q]);
    }
    trace.push_back(row);
  }
  return trace;
}

}  // namespace citl::oracle
