// Cross-fidelity differential oracle with automatic divergence bisection.
//
// Runs one turn-loop scenario through a *pair* of fidelities (pure-double
// host reference, serial CGRA machine in f32/f64, lane 0 of a batched
// machine) in lockstep and compares the per-turn observables — gamma_r,
// dgamma, dt and the measured bunch phase — under per-quantity ULP/absolute
// tolerance budgets (tolerance.hpp). On the first out-of-budget turn it
//   1. bisects the first divergent turn with checkpoint/rollback probes
//      (hil::TurnLoop::checkpoint(), which carries the model lane's states
//      AND pipeline registers, so a restored loop replays bit-exactly),
//   2. shrinks the scenario — truncate turns, drop fault-plan entries, drop
//      the jump programme, open the control loop, zero the noise — keeping
//      each simplification only if the divergence survives,
//   3. emits a self-contained repro artifact: a JSON description plus a CSV
//      trace window (expected/actual/ULP per quantity) that
//      load_repro_trace() reloads through the io::parse_csv machinery.
//
// The oracle is deliberately sweep-agnostic; sweep::Scenario carries an
// OracleSpec and the sweep engine calls run_oracle() per scenario (identical
// in the serial and chunked paths, preserving their byte-identity).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cgra/schedule.hpp"
#include "hil/turnloop.hpp"
#include "oracle/tolerance.hpp"

namespace citl::oracle {

/// The four observables compared each turn, in fixed order.
inline constexpr std::size_t kQuantityCount = 4;
[[nodiscard]] const char* quantity_name(std::size_t q) noexcept;

struct OracleConfig {
  Fidelity reference = Fidelity::kHostF64;
  Fidelity candidate = Fidelity::kSerialF32;
  /// Unset: ToleranceBudget::for_pair(reference, candidate).
  std::optional<ToleranceBudget> budget;
  std::int64_t turns = 2000;
  /// Checkpoint + compare every `stride` turns, bisect on failure. Forced
  /// to 1 (compare every turn, no rollback) when the scenario carries
  /// faults or a supervisor — their state is outside the checkpoint image.
  std::int64_t checkpoint_stride = 64;
  /// Lane count of a batched fidelity; sibling lanes run the identical
  /// scenario and lane 0 is compared.
  std::size_t batch_lanes = 4;
  bool shrink = true;
  /// Directory for repro artifacts; empty = don't write files.
  std::string artifact_dir;
  /// Artifact file stem ("<stem>.json" / "<stem>_trace.csv").
  std::string artifact_stem = "oracle_repro";
  /// Kernel override for the candidate side (perturb_kernel_constant());
  /// null = both sides execute the scenario's own kernel.
  std::shared_ptr<const cgra::CompiledKernel> candidate_kernel;
};

/// One quantity's value pair at the divergent turn.
struct QuantityDivergence {
  std::string name;
  double expected = 0.0;  ///< reference fidelity
  double actual = 0.0;    ///< candidate fidelity
  std::uint64_t ulp = 0;
  double abs_diff = 0.0;
};

/// One row of the repro trace (and of load_repro_trace()).
struct TraceRow {
  std::int64_t turn = 0;
  std::array<double, kQuantityCount> expected{};
  std::array<double, kQuantityCount> actual{};
  std::array<double, kQuantityCount> ulp{};  ///< saturated to 2^53
};

struct OracleReport {
  bool diverged = false;
  /// First turn whose observables left the budget (exact: confirmed by a
  /// turn-by-turn scan from the last clean checkpoint); -1 = agreement.
  std::int64_t first_divergent_turn = -1;
  /// The bisection probes' answer — equals first_divergent_turn whenever
  /// divergence is monotone (always observed; the scan is the guard).
  std::int64_t bisected_turn = -1;
  std::int64_t turns_run = 0;
  /// Max ULP distance observed across all compared turns/quantities,
  /// saturated into a double (exact up to 2^53).
  double max_ulp_err = 0.0;
  UlpHistogram histogram;
  std::vector<QuantityDivergence> divergences;  ///< at the divergent turn
  std::vector<TraceRow> trace;                  ///< window around divergence
  /// Shrink decisions ("drop jumps: kept (still diverges at turn 812)").
  std::vector<std::string> shrink_log;
  /// Minimal reproducer (only meaningful when diverged && shrink ran).
  hil::TurnLoopConfig minimal_config;
  std::int64_t minimal_turns = 0;
  std::string artifact_json;  ///< path, when artifacts were written
  std::string artifact_csv;
};

/// Runs the differential oracle on one scenario. The loop config is the
/// *base* (pre-effective) TurnLoopConfig, exactly what TurnLoop's ctor
/// takes. Throws ConfigError for fidelity pairs the scenario cannot carry
/// (e.g. a ramp kernel, or reference == candidate with no kernel override).
[[nodiscard]] OracleReport run_oracle(const hil::TurnLoopConfig& loop_config,
                                      const OracleConfig& oracle_config);

/// Returns a copy of `kernel` with the first kConst node whose constant
/// equals `target_value` nudged by one ULP upward — in the *working
/// precision's* lattice: for an f32 machine the nudge is one binary32 ULP
/// (a one-ulp64 nudge would vanish in the machine's constant quantisation).
/// Node ids, schedule and architecture are preserved (Dfg::restore), so the
/// result is the same compiled artifact with a single poisoned literal —
/// the oracle's acceptance self-test. Throws ConfigError when no constant
/// matches.
[[nodiscard]] cgra::CompiledKernel perturb_kernel_constant(
    const cgra::CompiledKernel& kernel, double target_value,
    cgra::Precision precision);

/// Reloads a repro-artifact CSV trace (written by run_oracle) via
/// io::parse_csv + io::csv_parse_number. Throws ConfigError on malformed
/// headers or non-numeric cells.
[[nodiscard]] std::vector<TraceRow> load_repro_trace(const std::string& path);

/// Sweep opt-in: when enabled, the sweep engine runs this oracle per
/// scenario and reports max_ulp_err / first_divergent_turn columns.
struct OracleSpec {
  bool enabled = false;
  Fidelity reference = Fidelity::kHostF64;
  Fidelity candidate = Fidelity::kSerialF32;
  std::optional<ToleranceBudget> budget;
  std::int64_t checkpoint_stride = 64;
};

}  // namespace citl::oracle
